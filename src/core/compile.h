// The one-stop "compiler pass" a streaming language would run at build
// time: classify the topology, compute dummy intervals with the cheapest
// applicable algorithm, and materialize the per-edge configuration the
// runtime wrappers consume. This is the public face of the paper's
// contribution.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/cs4/decompose.h"
#include "src/graph/stream_graph.h"
#include "src/intervals/interval_map.h"

namespace sdaf::core {

enum class Algorithm : std::uint8_t {
  Propagation,     // few senders, dummies forwarded (Section II.B, first)
  NonPropagation,  // every node sends, dummies absorbed (second)
};

enum class Classification : std::uint8_t {
  SpDag,      // reduced to a single SP component
  Cs4Chain,   // serial chain of SP components and SP-ladders
  GeneralDag, // outside CS4; exact intervals cost exponential time
};

enum class GeneralPolicy : std::uint8_t {
  // Fall back to the exponential cycle-enumeration baseline (Section II.B);
  // only sensible for small graphs.
  ExactExponential,
  // Refuse to compile non-CS4 topologies (what a production compiler that
  // promises bounded compile times would do; the user must restructure,
  // cf. the butterfly rewrite in Section VII).
  Reject,
};

struct CompileOptions {
  Algorithm algorithm = Algorithm::Propagation;
  GeneralPolicy general_policy = GeneralPolicy::ExactExponential;
  LadderMethod ladder_method = LadderMethod::Enumeration;
  std::size_t cycle_limit = 1u << 22;  // for the exponential fallback
};

// How exact rational intervals become the integer thresholds the runtime
// counts against.
enum class Rounding : std::uint8_t {
  PaperCeil,  // Fig. 3's "roundup": ceil(8/3) = 3
  Floor,      // conservative: floor, clamped to >= 1
};

inline constexpr std::int64_t kNoDummyInterval =
    std::numeric_limits<std::int64_t>::max();

struct CompileResult {
  bool ok = false;
  Classification classification = Classification::GeneralDag;
  Algorithm algorithm = Algorithm::Propagation;
  std::string diagnostics;  // rejection reason or informational notes
  IntervalMap intervals;    // exact rationals, one per edge

  // True for edges lying on at least one undirected cycle (equivalently,
  // edges of a multi-edge biconnected block).
  std::vector<std::uint8_t> on_cycle;

  // Propagation-Algorithm forwarding set (see forward_on_filter()).
  std::vector<std::uint8_t> forward_edges;

  // Integer per-edge thresholds; kNoDummyInterval for infinite intervals.
  [[nodiscard]] std::vector<std::int64_t> integer_intervals(
      Rounding rounding) const;

  // Propagation-Algorithm forwarding set: edges where a node that filters
  // *data* must emit a dummy at the same sequence number, i.e. propagate
  // the sequence-number knowledge onward just as it must for received
  // dummies.
  //
  // An edge may rely on its lazy schedule only when *every* undirected
  // cycle through it starts at the edge's own tail (the edge is a "first
  // edge" of every cycle run it lies on): then the interval [e] = min L
  // over those cycles bounds how long downstream can starve. Any edge that
  // continues another cycle's run -- an interior edge of Fig. 3's cycle,
  // or a cross-link that chains after another cross-link -- has no budget
  // of its own: the upstream scheduled edge may already have consumed the
  // whole cycle budget, so the knowledge must travel on at zero added gap.
  // The paper leaves this rule implicit ("dummy messages ... must be
  // propagated on all output channels"); without extending it to filtered
  // data the Propagation Algorithm deadlocks under interior filtering (a
  // three-node counterexample is in tests/test_executor.cpp, and
  // EXPERIMENTS.md E2 records the reproduction finding).
  [[nodiscard]] const std::vector<std::uint8_t>& forward_on_filter() const {
    return forward_edges;
  }
};

[[nodiscard]] CompileResult compile(const StreamGraph& g,
                                    const CompileOptions& options = {});

[[nodiscard]] const char* to_string(Classification c);
[[nodiscard]] const char* to_string(Algorithm a);

}  // namespace sdaf::core
