#include "src/runtime/wrapper.h"

#include <gtest/gtest.h>

namespace sdaf::runtime {
namespace {

TEST(Wrapper, NoneModeNeverSends) {
  NodeWrapper w(DummyMode::None, {1, 1});
  for (std::uint64_t s = 0; s < 10; ++s) {
    EXPECT_FALSE(w.should_send_dummy(0, s, false, false));
    EXPECT_FALSE(w.should_send_dummy(1, s, false, true));
  }
}

TEST(Wrapper, SequenceGapFiresAtInterval) {
  NodeWrapper w(DummyMode::NonPropagation, {3});
  // last_sent starts at -1: seq 2 is the first with gap >= 3.
  EXPECT_FALSE(w.should_send_dummy(0, 0, false, false));
  EXPECT_FALSE(w.should_send_dummy(0, 1, false, false));
  EXPECT_TRUE(w.should_send_dummy(0, 2, false, false));
  EXPECT_FALSE(w.should_send_dummy(0, 3, false, false));
  EXPECT_FALSE(w.should_send_dummy(0, 4, false, false));
  EXPECT_TRUE(w.should_send_dummy(0, 5, false, false));
}

TEST(Wrapper, GapCountsSequenceNumbersNotFirings) {
  // The node fires sparsely (arrivals every 4 seqs); with interval 3 the
  // very first sparse firing is already overdue. Counting firings instead
  // would wait three arrivals (12 seqs) -- the decay bug.
  NodeWrapper w(DummyMode::NonPropagation, {3});
  EXPECT_FALSE(w.should_send_dummy(0, 0, true, false));  // data at 0
  EXPECT_TRUE(w.should_send_dummy(0, 4, false, false));  // 4 - 0 >= 3
  EXPECT_TRUE(w.should_send_dummy(0, 8, false, false));  // 8 - 4 >= 3
}

TEST(Wrapper, DataResetsGap) {
  NodeWrapper w(DummyMode::NonPropagation, {3});
  EXPECT_FALSE(w.should_send_dummy(0, 0, true, false));
  EXPECT_FALSE(w.should_send_dummy(0, 1, false, false));
  EXPECT_FALSE(w.should_send_dummy(0, 2, false, false));
  EXPECT_TRUE(w.should_send_dummy(0, 3, false, false));
  EXPECT_FALSE(w.should_send_dummy(0, 4, true, false));
  EXPECT_FALSE(w.should_send_dummy(0, 6, false, false));
  EXPECT_TRUE(w.should_send_dummy(0, 7, false, false));
}

TEST(Wrapper, SlotsIndependent) {
  NodeWrapper w(DummyMode::NonPropagation, {2, 4});
  EXPECT_FALSE(w.should_send_dummy(0, 0, false, false));
  EXPECT_FALSE(w.should_send_dummy(1, 0, false, false));
  EXPECT_TRUE(w.should_send_dummy(0, 1, false, false));   // gap 2 on slot 0
  EXPECT_FALSE(w.should_send_dummy(1, 1, false, false));
  EXPECT_FALSE(w.should_send_dummy(0, 2, false, false));
  EXPECT_FALSE(w.should_send_dummy(1, 2, false, false));
  EXPECT_TRUE(w.should_send_dummy(0, 3, false, false));
  EXPECT_TRUE(w.should_send_dummy(1, 3, false, false));   // gap 4 on slot 1
}

TEST(Wrapper, PropagationForwardsReceivedDummies) {
  NodeWrapper w(DummyMode::Propagation, {kInfiniteInterval});
  // Even with an infinite origination interval, an incoming dummy must be
  // forwarded when no data was sent.
  EXPECT_TRUE(w.should_send_dummy(0, 0, false, true));
  // Data suppresses the forwarded dummy on that edge.
  EXPECT_FALSE(w.should_send_dummy(0, 1, true, true));
}

TEST(Wrapper, PropagationForwardResetsGap) {
  NodeWrapper w(DummyMode::Propagation, {3});
  EXPECT_FALSE(w.should_send_dummy(0, 0, true, false));
  EXPECT_FALSE(w.should_send_dummy(0, 1, false, false));
  EXPECT_TRUE(w.should_send_dummy(0, 2, false, true));  // forced forward
  // The forward counts as traffic on the edge: gap restarts at seq 2.
  EXPECT_FALSE(w.should_send_dummy(0, 3, false, false));
  EXPECT_FALSE(w.should_send_dummy(0, 4, false, false));
  EXPECT_TRUE(w.should_send_dummy(0, 5, false, false));
}

TEST(Wrapper, ForwardOnFilterFlag) {
  // Interior cycle edge: filtered data is converted to a dummy at the same
  // sequence number, regardless of schedule.
  NodeWrapper w(DummyMode::Propagation, {kInfiniteInterval}, {1});
  EXPECT_TRUE(w.should_send_dummy(0, 0, false, false));
  EXPECT_TRUE(w.should_send_dummy(0, 1, false, false));
  EXPECT_FALSE(w.should_send_dummy(0, 2, true, false));
  EXPECT_TRUE(w.should_send_dummy(0, 3, false, false));
}

TEST(Wrapper, ForwardOnFilterIgnoredInNonProp) {
  NodeWrapper w(DummyMode::NonPropagation, {3}, {1});
  EXPECT_FALSE(w.should_send_dummy(0, 0, true, false));
  EXPECT_FALSE(w.should_send_dummy(0, 1, false, false));
  EXPECT_FALSE(w.should_send_dummy(0, 2, false, false));
  EXPECT_TRUE(w.should_send_dummy(0, 3, false, false));  // schedule only
}

TEST(Wrapper, NonPropagationIgnoresReceivedDummies) {
  NodeWrapper w(DummyMode::NonPropagation, {3});
  EXPECT_FALSE(w.should_send_dummy(0, 0, false, true));
  EXPECT_FALSE(w.should_send_dummy(0, 1, false, true));
  EXPECT_TRUE(w.should_send_dummy(0, 2, false, true));  // own schedule
}

TEST(Wrapper, InfiniteIntervalNeverOriginates) {
  NodeWrapper w(DummyMode::NonPropagation, {kInfiniteInterval});
  for (std::uint64_t s = 0; s < 1000; ++s)
    EXPECT_FALSE(w.should_send_dummy(0, s, false, false));
}

TEST(Wrapper, IntervalOneSendsEveryFilteredSeq) {
  NodeWrapper w(DummyMode::Propagation, {1});
  EXPECT_TRUE(w.should_send_dummy(0, 0, false, false));
  EXPECT_TRUE(w.should_send_dummy(0, 1, false, false));
  EXPECT_FALSE(w.should_send_dummy(0, 2, true, false));
  EXPECT_TRUE(w.should_send_dummy(0, 3, false, false));
}

TEST(WrapperDeathTest, RejectsNonPositiveInterval) {
  EXPECT_DEATH(NodeWrapper(DummyMode::Propagation, {0}), "precondition");
}

}  // namespace
}  // namespace sdaf::runtime
