#include "src/graph/stream_graph.h"

#include <gtest/gtest.h>

#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

TEST(StreamGraph, Empty) {
  const StreamGraph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.size(), 0u);
}

TEST(StreamGraph, AddNodesAndEdges) {
  StreamGraph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  const EdgeId e = g.add_edge(a, b, 5);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.edge(e).from, a);
  EXPECT_EQ(g.edge(e).to, b);
  EXPECT_EQ(g.edge(e).buffer, 5);
  EXPECT_EQ(g.node_name(a), "A");
}

TEST(StreamGraph, AutoNames) {
  StreamGraph g;
  const NodeId n = g.add_node();
  EXPECT_EQ(g.node_name(n), "n0");
  g.set_node_name(n, "renamed");
  EXPECT_EQ(g.node_name(n), "renamed");
}

TEST(StreamGraph, MultiEdgesAreDistinct) {
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const EdgeId e1 = g.add_edge(a, b, 1);
  const EdgeId e2 = g.add_edge(a, b, 2);
  EXPECT_NE(e1, e2);
  EXPECT_EQ(g.out_degree(a), 2u);
  EXPECT_EQ(g.in_degree(b), 2u);
}

TEST(StreamGraph, AdjacencySpans) {
  const StreamGraph g = workloads::fig1_splitjoin();
  // A = node 0: out-edges to B and C in insertion order.
  const auto outs = g.out_edges(0);
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_EQ(g.edge(outs[0]).to, 1u);
  EXPECT_EQ(g.edge(outs[1]).to, 2u);
  const auto ins = g.in_edges(3);
  EXPECT_EQ(ins.size(), 2u);
}

TEST(StreamGraph, SourcesAndSinks) {
  const StreamGraph g = workloads::fig2_triangle();
  EXPECT_EQ(g.sources(), std::vector<NodeId>{0});
  EXPECT_EQ(g.sinks(), std::vector<NodeId>{2});
  EXPECT_EQ(g.unique_source(), 0u);
  EXPECT_EQ(g.unique_sink(), 2u);
}

TEST(StreamGraph, MultipleSourcesListed) {
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  g.add_edge(a, c, 1);
  g.add_edge(b, c, 1);
  EXPECT_EQ(g.sources().size(), 2u);
  EXPECT_EQ(g.sinks().size(), 1u);
}

TEST(StreamGraph, SetBuffer) {
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const EdgeId e = g.add_edge(a, b, 1);
  g.set_buffer(e, 9);
  EXPECT_EQ(g.edge(e).buffer, 9);
}

using StreamGraphDeath = StreamGraph;

TEST(StreamGraphDeathTest, RejectsSelfLoop) {
  StreamGraph g;
  const NodeId a = g.add_node();
  EXPECT_DEATH((void)g.add_edge(a, a, 1), "precondition");
}

TEST(StreamGraphDeathTest, RejectsZeroBuffer) {
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  EXPECT_DEATH((void)g.add_edge(a, b, 0), "precondition");
}

TEST(StreamGraphDeathTest, RejectsUnknownNode) {
  StreamGraph g;
  const NodeId a = g.add_node();
  EXPECT_DEATH((void)g.add_edge(a, 42, 1), "precondition");
}

}  // namespace
}  // namespace sdaf
