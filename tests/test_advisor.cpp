#include "src/core/advisor.h"

#include <gtest/gtest.h>

#include "src/support/prng.h"
#include "src/workloads/random_ladder.h"
#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

using core::Algorithm;

StreamGraph with_buffers(const StreamGraph& g,
                         const std::vector<std::int64_t>& buffers) {
  StreamGraph out;
  for (NodeId n = 0; n < g.node_count(); ++n)
    (void)out.add_node(g.node_name(n));
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    (void)out.add_edge(g.edge(e).from, g.edge(e).to, buffers[e]);
  return out;
}

TEST(Advisor, PipelineNeedsNothing) {
  const StreamGraph g = workloads::pipeline(5, 2);
  const auto advice = core::recommend_buffer_scale(
      g, Algorithm::Propagation, Rational(100));
  ASSERT_TRUE(advice.ok);
  EXPECT_EQ(advice.scale, 1);
  EXPECT_TRUE(advice.resulting_min_interval.is_infinite());
}

TEST(Advisor, TriangleScalesLinearly) {
  // Tightest propagation interval on the (2,2,2) triangle is 2 (edge AB);
  // asking for >= 10 requires scale 5.
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  const auto advice = core::recommend_buffer_scale(
      g, Algorithm::Propagation, Rational(10));
  ASSERT_TRUE(advice.ok);
  EXPECT_EQ(advice.scale, 5);
  EXPECT_EQ(advice.buffers, (std::vector<std::int64_t>{10, 10, 10}));
  EXPECT_EQ(advice.resulting_min_interval, Rational(10));
}

TEST(Advisor, ResultActuallyAchievesTarget) {
  Prng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    workloads::RandomLadderOptions opt;
    opt.rungs = 1 + static_cast<std::size_t>(trial % 3);
    const StreamGraph g = workloads::random_ladder(rng, opt);
    for (const auto algo :
         {Algorithm::Propagation, Algorithm::NonPropagation}) {
      const Rational target(25);
      const auto advice = core::recommend_buffer_scale(g, algo, target);
      ASSERT_TRUE(advice.ok);
      const StreamGraph scaled = with_buffers(g, advice.buffers);
      core::CompileOptions copt;
      copt.algorithm = algo;
      const auto recompiled = core::compile(scaled, copt);
      ASSERT_TRUE(recompiled.ok);
      for (EdgeId e = 0; e < scaled.edge_count(); ++e)
        EXPECT_GE(recompiled.intervals[e], target) << "edge " << e;
    }
  }
}

TEST(Advisor, ScaleIsMinimal) {
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  const auto advice = core::recommend_buffer_scale(
      g, Algorithm::Propagation, Rational(10));
  ASSERT_TRUE(advice.ok);
  // One notch below the advised scale must miss the target.
  std::vector<std::int64_t> smaller;
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    smaller.push_back(g.edge(e).buffer * (advice.scale - 1));
  const auto recompiled = core::compile(with_buffers(g, smaller));
  Rational tightest = Rational::infinity();
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    tightest = min(tightest, recompiled.intervals[e]);
  EXPECT_LT(tightest, Rational(10));
}

TEST(Advisor, NonPropagationUsesHopAwareIntervals) {
  // Non-prop tightest on the (2,2,2) triangle is (2)/2 = 1; target 3 needs
  // scale 3.
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  const auto advice = core::recommend_buffer_scale(
      g, Algorithm::NonPropagation, Rational(3));
  ASSERT_TRUE(advice.ok);
  EXPECT_EQ(advice.scale, 3);
}

TEST(Advisor, PropagatesCompileFailure) {
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  g.add_edge(a, b, 1);
  g.add_edge(a, c, 1);  // two sinks: compile fails
  const auto advice = core::recommend_buffer_scale(
      g, Algorithm::Propagation, Rational(5));
  EXPECT_FALSE(advice.ok);
  EXPECT_FALSE(advice.diagnostics.empty());
}

}  // namespace
}  // namespace sdaf
