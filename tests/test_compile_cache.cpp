#include "src/core/compile_cache.h"

#include <gtest/gtest.h>

#include "src/workloads/topologies.h"

namespace sdaf::core {
namespace {

TEST(CompileCache, HitOnResubmissionOfIdenticalTopology) {
  CompileCache cache(8);
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  const auto first = cache.get_or_compile(g);
  ASSERT_TRUE(first->ok);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  const auto second = cache.get_or_compile(g);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  // A hit is the same immutable object, not a recompile.
  EXPECT_EQ(first.get(), second.get());
}

TEST(CompileCache, NodeNamesDoNotAffectTheSignature) {
  // Same topology built twice with different node names: one compile.
  StreamGraph a = workloads::fig2_triangle(2, 2, 2);
  StreamGraph b = workloads::fig2_triangle(2, 2, 2);
  for (NodeId n = 0; n < b.node_count(); ++n)
    b.set_node_name(n, "tenant_" + std::to_string(n));
  EXPECT_EQ(CompileCache::signature(a, {}), CompileCache::signature(b, {}));

  CompileCache cache(8);
  (void)cache.get_or_compile(a);
  (void)cache.get_or_compile(b);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(CompileCache, DifferentBuffersOrOptionsMiss) {
  CompileCache cache(8);
  (void)cache.get_or_compile(workloads::fig2_triangle(2, 2, 2));
  (void)cache.get_or_compile(workloads::fig2_triangle(2, 2, 3));
  CompileOptions nonprop;
  nonprop.algorithm = Algorithm::NonPropagation;
  (void)cache.get_or_compile(workloads::fig2_triangle(2, 2, 2), nonprop);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(CompileCache, LruEviction) {
  CompileCache cache(2);
  const StreamGraph g1 = workloads::pipeline(3, 1);
  const StreamGraph g2 = workloads::pipeline(4, 1);
  const StreamGraph g3 = workloads::pipeline(5, 1);
  (void)cache.get_or_compile(g1);
  (void)cache.get_or_compile(g2);
  (void)cache.get_or_compile(g1);  // refresh g1; g2 is now LRU
  (void)cache.get_or_compile(g3);  // evicts g2
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);

  (void)cache.get_or_compile(g1);  // still cached
  EXPECT_EQ(cache.stats().hits, 2u);
  (void)cache.get_or_compile(g2);  // was evicted: recompiles
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(CompileCache, CachedResultMatchesDirectCompile) {
  CompileCache cache(4);
  const StreamGraph g = workloads::fig5_ladder(2);
  const auto cached = cache.get_or_compile(g);
  const auto direct = compile(g);
  ASSERT_TRUE(cached->ok);
  ASSERT_TRUE(direct.ok);
  EXPECT_EQ(cached->classification, direct.classification);
  EXPECT_TRUE(cached->intervals == direct.intervals);
  EXPECT_EQ(cached->forward_on_filter(), direct.forward_on_filter());
}

TEST(CompileCache, ClearResets) {
  CompileCache cache(4);
  (void)cache.get_or_compile(workloads::pipeline(3, 1));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  (void)cache.get_or_compile(workloads::pipeline(3, 1));
  EXPECT_EQ(cache.stats().misses, 2u);
}

}  // namespace
}  // namespace sdaf::core
