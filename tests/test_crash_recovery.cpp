// Driver for the crash-recovery differential
// (harness::run_crash_differential): kill a port-fed stream at a random
// snapshot barrier, restore from the serialized bytes into a fresh session,
// replay the cut's tail, and require the delivered output set (client-side
// dedup by seq) and the final report bit-identical to an uninterrupted run.
//
//   - ReproFromEnv: replays exactly one kill/restore from SDAF_CRASH_REPRO
//     ('<case line> crash=<seed> backend=<sim|threaded|pooled>', the tokens
//     the harness prints on mismatch).
//   - TimeBoxedCrashSweep: random cases for SDAF_STRESS_SECONDS (default
//     ~2s; tools/ci.sh --crash raises it under ASan/TSan) steered by
//     SDAF_STRESS_SEED.
//   - EveryTopologyCrashesAndRecovers: each topology generator through one
//     deterministic kill/restore per backend.
#include "tests/harness/stress_harness.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "src/runtime/pool_executor.h"

namespace sdaf::harness {
namespace {

TEST(CrashRecovery, EveryTopologyCrashesAndRecovers) {
  runtime::PoolExecutor pool(2);
  constexpr exec::Backend kBackends[] = {
      exec::Backend::Sim, exec::Backend::Threaded, exec::Backend::Pooled};
  for (const Topology topo : {Topology::Sp, Topology::Ladder,
                              Topology::Triangle, Topology::Continuation}) {
    CaseSpec spec;
    spec.topology = topo;
    spec.seed = 0xC4A5 + static_cast<std::uint64_t>(topo);
    spec.num_inputs = 40;
    spec.pass_rate = 0.5;
    spec.mode = runtime::DummyMode::Propagation;
    spec.feed = FeedMode::Port;
    for (const exec::Backend backend : kBackends) {
      const auto failure = run_crash_differential(
          spec, backend, /*crash_seed=*/0xDEAD ^ spec.seed, &pool);
      EXPECT_FALSE(failure.has_value()) << *failure;
    }
  }
}

// Both dummy modes and a coalesced batch quantum survive the kill/restore.
TEST(CrashRecovery, NonPropagationAndBatchedQuanta) {
  runtime::PoolExecutor pool(2);
  CaseSpec spec;
  spec.topology = Topology::Sp;
  spec.seed = 0xBEE5;
  spec.num_inputs = 60;
  spec.pass_rate = 0.6;
  spec.mode = runtime::DummyMode::NonPropagation;
  spec.batch = 7;
  spec.feed = FeedMode::Port;
  for (const exec::Backend backend :
       {exec::Backend::Sim, exec::Backend::Threaded, exec::Backend::Pooled}) {
    const auto failure =
        run_crash_differential(spec, backend, /*crash_seed=*/0x7EA, &pool);
    EXPECT_FALSE(failure.has_value()) << *failure;
  }
}

TEST(CrashRecovery, ReproFromEnv) {
  const char* line = std::getenv("SDAF_CRASH_REPRO");
  if (line == nullptr) {
    GTEST_SKIP() << "SDAF_CRASH_REPRO not set";
  }
  // The line is a harness case line plus crash=<seed> backend=<name>.
  std::string case_line;
  std::uint64_t crash_seed = 0;
  bool saw_crash = false;
  exec::Backend backend = exec::Backend::Sim;
  bool saw_backend = false;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    if (token.rfind("crash=", 0) == 0) {
      crash_seed = std::strtoull(token.c_str() + 6, nullptr, 0);
      saw_crash = true;
    } else if (token.rfind("backend=", 0) == 0) {
      const std::string name = token.substr(8);
      saw_backend = true;
      if (name == "sim")
        backend = exec::Backend::Sim;
      else if (name == "threaded")
        backend = exec::Backend::Threaded;
      else if (name == "pooled")
        backend = exec::Backend::Pooled;
      else
        saw_backend = false;
    } else {
      if (!case_line.empty()) case_line += ' ';
      case_line += token;
    }
  }
  ASSERT_TRUE(saw_crash && saw_backend)
      << "SDAF_CRASH_REPRO needs crash= and backend= tokens: " << line;
  const auto spec = parse_case(case_line);
  ASSERT_TRUE(spec.has_value()) << "unparseable case: " << case_line;
  runtime::PoolExecutor pool(2);
  const auto failure = run_crash_differential(*spec, backend, crash_seed, &pool);
  EXPECT_FALSE(failure.has_value()) << *failure;
}

TEST(CrashRecovery, TimeBoxedCrashSweep) {
  double seconds = 2.0;
  if (const char* env = std::getenv("SDAF_STRESS_SECONDS"))
    seconds = std::strtod(env, nullptr);
  std::uint64_t seed = 0x5EED ^ 0xCC;
  if (const char* env = std::getenv("SDAF_STRESS_SEED"))
    seed = std::strtoull(env, nullptr, 0);
  runtime::PoolExecutor pool(3);
  const SweepResult result =
      sweep_crash_cases(seed, seconds, /*max_cases=*/1000000, &pool);
  EXPECT_FALSE(result.failure.has_value()) << *result.failure;
  EXPECT_GE(result.cases_run, 1);
  RecordProperty("cases_run", result.cases_run);
}

}  // namespace
}  // namespace sdaf::harness
