#include "src/spdag/sp_builder.h"

#include <gtest/gtest.h>

#include "src/graph/validate.h"
#include "src/support/prng.h"
#include "src/workloads/random_sp.h"

namespace sdaf {
namespace {

TEST(SpSpec, EdgeCountsCompose) {
  const auto spec = SpSpec::series(
      {SpSpec::edge(1),
       SpSpec::parallel({SpSpec::edge(2), SpSpec::edge(3), SpSpec::edge(4)}),
       SpSpec::edge(5)});
  EXPECT_EQ(spec.edge_count(), 5u);
}

TEST(SpSpec, SingletonCollapses) {
  const auto spec = SpSpec::series({SpSpec::edge(7)});
  EXPECT_EQ(spec.kind(), SpSpec::Kind::Edge);
  EXPECT_EQ(spec.buffer(), 7);
}

TEST(BuildSp, SingleEdge) {
  const auto built = build_sp(SpSpec::edge(9));
  EXPECT_EQ(built.graph.node_count(), 2u);
  EXPECT_EQ(built.graph.edge_count(), 1u);
  EXPECT_EQ(built.graph.edge(0).buffer, 9);
  EXPECT_EQ(built.tree.node(built.tree.root()).kind, SpKind::Leaf);
}

TEST(BuildSp, PipelineShape) {
  const auto built = build_sp(
      SpSpec::series({SpSpec::edge(1), SpSpec::edge(2), SpSpec::edge(3)}));
  EXPECT_EQ(built.graph.node_count(), 4u);
  EXPECT_EQ(built.graph.edge_count(), 3u);
  EXPECT_TRUE(validate(built.graph).two_terminal());
}

TEST(BuildSp, ParallelBundleIsMultiEdge) {
  const auto built = build_sp(
      SpSpec::parallel({SpSpec::edge(1), SpSpec::edge(2), SpSpec::edge(3)}));
  EXPECT_EQ(built.graph.node_count(), 2u);
  EXPECT_EQ(built.graph.edge_count(), 3u);
}

TEST(BuildSp, SplitJoinShape) {
  // series(edge, parallel(edge, edge), edge): classic split/join with
  // dedicated split and join nodes.
  const auto built = build_sp(SpSpec::series(
      {SpSpec::edge(1), SpSpec::parallel({SpSpec::edge(1), SpSpec::edge(1)}),
       SpSpec::edge(1)}));
  EXPECT_EQ(built.graph.edge_count(), 4u);
  EXPECT_TRUE(validate(built.graph).two_terminal());
}

TEST(BuildSp, TreeMatchesGraph) {
  Prng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    workloads::RandomSpOptions opt;
    opt.target_edges = 1 + static_cast<std::size_t>(trial);
    const auto built = workloads::random_sp(rng, opt);
    EXPECT_EQ(built.graph.edge_count(), opt.target_edges);
    EXPECT_TRUE(validate(built.graph).two_terminal());
    built.tree.check_consistency(built.graph);  // aborts on violation
  }
}

TEST(BuildSpBetween, EmbedsIntoExistingGraph) {
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  g.add_edge(a, b, 1);
  SpTree tree;
  const auto idx = build_sp_between(
      SpSpec::parallel({SpSpec::edge(2), SpSpec::edge(3)}), g, tree, b, c);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(tree.node(idx).source, b);
  EXPECT_EQ(tree.node(idx).sink, c);
}

}  // namespace
}  // namespace sdaf
