// Driver for the randomized stress / differential harness
// (tests/harness/stress_harness.h). Three entry points:
//
//   - ReproFromEnv: replays exactly one case from SDAF_HARNESS_REPRO
//     (the one-line spec the harness prints on mismatch).
//   - TimeBoxedRandomSweep: runs random cases for SDAF_STRESS_SECONDS
//     (default ~2s, so plain ctest stays fast; tools/ci.sh --stress raises
//     it under TSan/ASan) with SDAF_STRESS_SEED steering the sweep.
//   - SpecRoundTrip / named topology smokes: keep the repro format and
//     every topology generator honest.
#include "tests/harness/stress_harness.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/runtime/pool_executor.h"

namespace sdaf::harness {
namespace {

TEST(HarnessStress, SpecRoundTrip) {
  Prng rng(0xF00D);
  for (int i = 0; i < 200; ++i) {
    const CaseSpec spec = random_case(rng);
    const auto parsed = parse_case(to_string(spec));
    ASSERT_TRUE(parsed.has_value()) << to_string(spec);
    EXPECT_EQ(parsed->topology, spec.topology);
    EXPECT_EQ(parsed->seed, spec.seed);
    EXPECT_EQ(parsed->num_inputs, spec.num_inputs);
    EXPECT_EQ(parsed->pass_rate, spec.pass_rate);  // %.17g round-trips
    EXPECT_EQ(parsed->mode, spec.mode);
    EXPECT_EQ(parsed->batch, spec.batch);
    EXPECT_EQ(parsed->feed, spec.feed);
    EXPECT_EQ(parsed->chunk, spec.chunk);
    EXPECT_EQ(parsed->sched, spec.sched);
    EXPECT_EQ(parsed->tenants, spec.tenants);
  }
  EXPECT_FALSE(parse_case("nonsense").has_value());
  EXPECT_FALSE(parse_case("topo=warp seed=1").has_value());
  EXPECT_FALSE(parse_case("topo=sp seed=1 sched=chaotic").has_value());
  EXPECT_FALSE(parse_case("topo=sp seed=1 tenants=0").has_value());
  // Pre-port repro lines (no feed=/chunk=/sched=/tenants=) still parse, as
  // batch-fed single-tenant with the default scheduling regime.
  const auto legacy = parse_case("topo=sp seed=7 inputs=30 batch=2");
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->feed, FeedMode::Batch);
  EXPECT_EQ(legacy->sched, Sched::Lifo);
  EXPECT_EQ(legacy->tenants, 1u);
}

TEST(HarnessStress, EveryTopologyRunsDifferentially) {
  runtime::PoolExecutor pool(2);
  for (const Topology topo : {Topology::Sp, Topology::Ladder,
                              Topology::Triangle, Topology::Continuation}) {
    CaseSpec spec;
    spec.topology = topo;
    spec.seed = 0xBA5E + static_cast<std::uint64_t>(topo);
    spec.num_inputs = 40;
    spec.pass_rate = 0.5;
    spec.mode = runtime::DummyMode::Propagation;
    spec.batch = 7;
    const auto failure = run_differential(spec, &pool);
    EXPECT_FALSE(failure.has_value()) << *failure;
  }
}

TEST(HarnessStress, ReproFromEnv) {
  const char* line = std::getenv("SDAF_HARNESS_REPRO");
  if (line == nullptr) {
    GTEST_SKIP() << "SDAF_HARNESS_REPRO not set";
  }
  const auto spec = parse_case(line);
  ASSERT_TRUE(spec.has_value()) << "unparseable spec: " << line;
  runtime::PoolExecutor pool(2);
  // A tenants=N line came from the multi-tenant sweep; replay it through
  // the same check.
  const auto failure = spec->tenants > 1
                           ? run_multitenant_differential(*spec, &pool)
                           : run_differential(*spec, &pool);
  EXPECT_FALSE(failure.has_value()) << *failure;
}

TEST(HarnessStress, TimeBoxedRandomSweep) {
  double seconds = 2.0;
  if (const char* env = std::getenv("SDAF_STRESS_SECONDS"))
    seconds = std::strtod(env, nullptr);
  std::uint64_t seed = 0x5EED;
  if (const char* env = std::getenv("SDAF_STRESS_SEED"))
    seed = std::strtoull(env, nullptr, 0);
  runtime::PoolExecutor pool(3);
  const SweepResult result = sweep_random_cases(
      seed, seconds, /*max_cases=*/1000000, &pool);
  EXPECT_FALSE(result.failure.has_value()) << *result.failure;
  EXPECT_GE(result.cases_run, 1);
  RecordProperty("cases_run", result.cases_run);
  RecordProperty("deadlocks", result.deadlocks);
}

// Every case port-fed: randomized push chunking/pacing through the live
// Stream API on all three backends, each required bit-identical to the
// batch-fed simulator reference (tools/ci.sh --stress runs this under
// ASan and TSan).
TEST(HarnessStress, PortModeSweep) {
  double seconds = 2.0;
  if (const char* env = std::getenv("SDAF_STRESS_SECONDS"))
    seconds = std::strtod(env, nullptr);
  std::uint64_t seed = 0x5EED ^ 0x90;
  if (const char* env = std::getenv("SDAF_STRESS_SEED"))
    seed = std::strtoull(env, nullptr, 0);
  runtime::PoolExecutor pool(3);
  const SweepResult result = sweep_random_cases(
      seed, seconds, /*max_cases=*/1000000, &pool, FeedMode::Port);
  EXPECT_FALSE(result.failure.has_value()) << *result.failure;
  EXPECT_GE(result.cases_run, 1);
  RecordProperty("cases_run", result.cases_run);
  RecordProperty("deadlocks", result.deadlocks);
}

// The multi-tenant sweep (qos): every case runs as 2-3 concurrent port-fed
// tenant copies on one shared fair-injector pool, distinct DRR weights and
// (when avoidance-armed) tight per-tenant credit windows, each copy
// required bit-identical to the solo batch-fed simulator reference --
// weighting and backpressure may reorder execution, never change
// semantics. tools/ci.sh --stress runs this under ASan and TSan.
TEST(HarnessStress, MultiTenantSweep) {
  double seconds = 2.0;
  if (const char* env = std::getenv("SDAF_STRESS_SECONDS"))
    seconds = std::strtod(env, nullptr);
  std::uint64_t seed = 0x5EED ^ 0x7E;
  if (const char* env = std::getenv("SDAF_STRESS_SEED"))
    seed = std::strtoull(env, nullptr, 0);
  runtime::PoolExecutor pool(3);
  const SweepResult result = sweep_multitenant_cases(
      seed, seconds, /*max_cases=*/1000000, &pool);
  EXPECT_FALSE(result.failure.has_value()) << *result.failure;
  EXPECT_GE(result.cases_run, 1);
  RecordProperty("cases_run", result.cases_run);
}

// The scheduler-adversarial sweep: every case runs the pooled backend under
// each non-default scheduling regime -- fifo (hot slot off), steal-heavy
// (more workers than nodes, tiny deques, injected yields) and park-storm
// (1-step quanta, constant futex parking) -- and must stay bit-identical to
// the batch-fed simulator reference. This is the "the scheduler may reorder
// execution, never change semantics" property under the worst interleavings
// we can force; tools/ci.sh --stress runs it under ASan and TSan.
TEST(HarnessStress, SchedPerturbationSweep) {
  double seconds = 2.0;
  if (const char* env = std::getenv("SDAF_STRESS_SECONDS"))
    seconds = std::strtod(env, nullptr);
  std::uint64_t seed = 0x5EED ^ 0x5C;
  if (const char* env = std::getenv("SDAF_STRESS_SEED"))
    seed = std::strtoull(env, nullptr, 0);
  runtime::PoolExecutor pool(3);
  int total_cases = 0;
  for (const Sched sched :
       {Sched::Fifo, Sched::StealHeavy, Sched::ParkStorm}) {
    const SweepResult result =
        sweep_random_cases(seed + static_cast<std::uint64_t>(sched),
                           seconds / 3.0, /*max_cases=*/1000000, &pool,
                           std::nullopt, sched);
    EXPECT_FALSE(result.failure.has_value())
        << "sched=" << to_string(sched) << ": " << *result.failure;
    EXPECT_GE(result.cases_run, 1) << to_string(sched);
    total_cases += result.cases_run;
  }
  RecordProperty("cases_run", total_cases);
}

}  // namespace
}  // namespace sdaf::harness
