// sdaf::obs acceptance tests.
//
// The load-bearing property is *backend invariance*: node counters are
// incremented at shared FiringCore sites (emission where outputs are
// queued, consumption where heads are popped), so for a deterministic
// workload the simulator's counts are a bit-exact reference for the
// threaded and pooled backends -- per node and per channel, completed or
// wedged. Scheduling-shaped counters (full_stalls, empty_waits, worker
// stats) are intentionally NOT asserted equal; they measure contention,
// which is backend-specific by nature.
//
// The exporters are schema-stable interfaces: tests pin the JSON key set
// and the Prometheus family names/types so downstream dashboards never
// break silently.
#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/core/compile.h"
#include "src/exec/session.h"
#include "src/obs/export.h"
#include "src/obs/sampler.h"
#include "src/runtime/pool_executor.h"
#include "src/runtime/trace.h"
#include "src/workloads/filters.h"
#include "src/workloads/topologies.h"
#include "tests/harness/stress_harness.h"

namespace sdaf {
namespace {

using exec::Backend;

struct MeteredRun {
  exec::RunReport report;
  obs::MetricsRegistry registry;
};

MeteredRun run_metered(const StreamGraph& g, const harness::CaseSpec& cs,
                       Backend backend, runtime::PoolExecutor* pool) {
  MeteredRun out{exec::RunReport{},
                 obs::MetricsRegistry(g.node_count(), g.edge_count())};
  exec::Session session(g, harness::build_kernels(g, cs));
  exec::RunSpec spec;
  spec.backend = backend;
  spec.mode = cs.mode;
  spec.num_inputs = cs.num_inputs;
  spec.batch = cs.batch;
  spec.pool = pool;
  spec.metrics = &out.registry;
  if (cs.mode == runtime::DummyMode::None)
    out.report = session.run(spec);
  else
    out.report = session.compile_and_run(spec).report;
  return out;
}

TEST(MetricsRegistry, BumpSnapshotReset) {
  const StreamGraph g = workloads::pipeline(2, 4);
  obs::MetricsRegistry reg(g.node_count(), g.edge_count());
  obs::bump(reg.node(0).fires, 3);
  obs::bump(reg.node(1).data_in, 2);
  obs::bump(reg.channel(0).data_pushed, 5);
  obs::bump(reg.channel(0).pops, 2);
  reg.channel(0).note_high_water(3);

  obs::SnapshotOptions opts;
  opts.backend = "sim";
  const auto s = obs::snapshot(g, reg, opts);
  ASSERT_EQ(s.nodes.size(), 2u);
  ASSERT_EQ(s.channels.size(), 1u);
  EXPECT_EQ(s.nodes[0].fires, 3u);
  EXPECT_EQ(s.nodes[1].data_in, 2u);
  EXPECT_EQ(s.channels[0].data_pushed, 5u);
  EXPECT_EQ(s.channels[0].occupancy, 3);  // 5 pushed - 2 popped
  EXPECT_EQ(s.channels[0].high_water, 3);
  EXPECT_EQ(s.tenant.items_fired, 3u);
  EXPECT_EQ(s.tenant.data_items, 5u);

  reg.reset();
  const auto z = obs::snapshot(g, reg, opts);
  EXPECT_EQ(z.nodes[0].fires, 0u);
  EXPECT_EQ(z.channels[0].data_pushed, 0u);
  EXPECT_EQ(z.channels[0].high_water, 0);
}

TEST(MetricsDifferential, CountersBitIdenticalAcrossBackends) {
  // The sim is the reference; threaded and pooled must agree per node on
  // fires / data_out / dummy_out / eos_out / data_in / dummy_in and per
  // channel on data_pushed / dummies_pushed / pops -- exact at quiescence,
  // completed AND wedged. The sweep covers all topologies, both avoidance
  // modes plus avoidance-off, and batched firing.
  runtime::PoolExecutor pool(3);
  std::vector<harness::CaseSpec> cases;
  {
    harness::CaseSpec c;
    c.topology = harness::Topology::Sp;
    c.seed = 11;
    c.num_inputs = 60;
    c.pass_rate = 0.5;
    c.mode = runtime::DummyMode::Propagation;
    c.batch = 1;
    cases.push_back(c);
    c.topology = harness::Topology::Ladder;
    c.seed = 12;
    c.mode = runtime::DummyMode::NonPropagation;
    c.batch = 7;
    cases.push_back(c);
    c.topology = harness::Topology::Continuation;
    c.seed = 13;
    c.mode = runtime::DummyMode::Propagation;
    c.batch = 64;
    cases.push_back(c);
    c.topology = harness::Topology::Triangle;  // the known wedge
    c.seed = 14;
    c.pass_rate = 0.3;
    c.mode = runtime::DummyMode::None;
    c.batch = 1;
    cases.push_back(c);
  }
  for (const auto& cs : cases) {
    SCOPED_TRACE(harness::to_string(cs));
    const StreamGraph g = harness::build_topology(cs);
    const MeteredRun ref = run_metered(g, cs, Backend::Sim, nullptr);
    // Registry agrees with the report's own accounting on the reference.
    for (NodeId n = 0; n < g.node_count(); ++n)
      ASSERT_EQ(ref.registry.node(n).fires.load(), ref.report.fires[n]) << n;
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      ASSERT_EQ(ref.registry.channel(e).data_pushed.load(),
                ref.report.edges[e].data)
          << e;
      ASSERT_EQ(ref.registry.channel(e).dummies_pushed.load(),
                ref.report.edges[e].dummies)
          << e;
    }
    for (const Backend backend : {Backend::Threaded, Backend::Pooled}) {
      SCOPED_TRACE(to_string(backend));
      const MeteredRun got = run_metered(g, cs, backend, &pool);
      ASSERT_EQ(got.report.deadlocked, ref.report.deadlocked);
      for (NodeId n = 0; n < g.node_count(); ++n) {
        const auto& want = ref.registry.node(n);
        const auto& have = got.registry.node(n);
        ASSERT_EQ(have.fires.load(), want.fires.load()) << "node " << n;
        ASSERT_EQ(have.data_out.load(), want.data_out.load()) << "node " << n;
        ASSERT_EQ(have.dummy_out.load(), want.dummy_out.load())
            << "node " << n;
        ASSERT_EQ(have.eos_out.load(), want.eos_out.load()) << "node " << n;
        ASSERT_EQ(have.data_in.load(), want.data_in.load()) << "node " << n;
        ASSERT_EQ(have.dummy_in.load(), want.dummy_in.load()) << "node " << n;
      }
      for (EdgeId e = 0; e < g.edge_count(); ++e) {
        const auto& want = ref.registry.channel(e);
        const auto& have = got.registry.channel(e);
        ASSERT_EQ(have.data_pushed.load(), want.data_pushed.load())
            << "edge " << e;
        ASSERT_EQ(have.dummies_pushed.load(), want.dummies_pushed.load())
            << "edge " << e;
        ASSERT_EQ(have.pops.load(), want.pops.load()) << "edge " << e;
      }
    }
  }
}

TEST(MetricsDifferential, DummyOverheadRatioMatchesTracer) {
  // The snapshot's dummy_overhead_ratio must equal what an event trace
  // counts: with batch = 1 every queued dummy is one DummySent event.
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  std::vector<std::shared_ptr<runtime::Kernel>> kernels;
  kernels.push_back(std::make_shared<runtime::RelayKernel>(
      workloads::adversarial_prefix_filter(1, 1000)));
  kernels.push_back(runtime::pass_through_kernel());
  kernels.push_back(runtime::pass_through_kernel());
  exec::Session session(g, kernels);

  obs::MetricsRegistry reg(g.node_count(), g.edge_count());
  runtime::Tracer tracer(1u << 18);
  exec::RunSpec spec;
  spec.mode = runtime::DummyMode::Propagation;
  spec.num_inputs = 100;
  spec.metrics = &reg;
  spec.tracer = &tracer;
  ASSERT_TRUE(session.compile_and_run(spec).report.completed);

  const std::uint64_t traced_dummies =
      tracer.filter(runtime::TraceKind::DummySent).size();
  std::uint64_t counted_dummies = 0;
  for (NodeId n = 0; n < g.node_count(); ++n)
    counted_dummies += reg.node(n).dummy_out.load();
  ASSERT_GT(traced_dummies, 0u);
  EXPECT_EQ(counted_dummies, traced_dummies);

  obs::SnapshotOptions opts;
  opts.backend = "sim";
  const auto s = obs::snapshot(g, reg, opts);
  EXPECT_EQ(s.tenant.dummy_items, traced_dummies);
  const double expect_ratio =
      static_cast<double>(traced_dummies) /
      static_cast<double>(s.tenant.data_items + s.tenant.dummy_items);
  EXPECT_DOUBLE_EQ(s.tenant.dummy_overhead_ratio, expect_ratio);
}

TEST(MetricsExport, JsonSchemaStable) {
  const StreamGraph g = workloads::pipeline(2, 4);
  obs::MetricsRegistry reg(g.node_count(), g.edge_count());
  obs::bump(reg.node(0).fires, 7);
  obs::bump(reg.channel(0).data_pushed, 7);

  obs::SnapshotOptions opts;
  opts.backend = "threaded";
  opts.tenant = "we\"ird\\tenant";
  opts.bytes_per_slot = 16;
  auto s = obs::snapshot(g, reg, opts);
  obs::PortMetrics port;
  port.node = 0;
  port.name = g.node_name(0);
  port.input = true;
  port.pushed = 7;
  port.capacity = 256;
  s.ports.push_back(port);

  const std::string j = obs::to_json(s);
  // Envelope and key set -- the schema tag is the compatibility contract.
  EXPECT_NE(j.find("\"schema\":\"sdaf.metrics.v1\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"backend\":\"threaded\""), std::string::npos);
  EXPECT_NE(j.find("\"tenant\":{\"name\":\"we\\\"ird\\\\tenant\""),
            std::string::npos)
      << j;
  for (const char* key :
       {"\"runs\":", "\"items_fired\":", "\"data_items\":", "\"dummy_items\":",
        "\"dummy_overhead_ratio\":", "\"channel_slots\":", "\"channel_bytes\":",
        "\"wall_seconds\":", "\"ckpt\":{", "\"snapshots_taken\":",
        "\"snapshot_pending\":", "\"last_snapshot_seconds\":",
        "\"nodes\":[", "\"channels\":[", "\"workers\":[",
        "\"ports\":[", "\"fires\":7", "\"data_pushed\":7", "\"dir\":\"in\"",
        "\"occupancy\":", "\"high_water\":"})
    EXPECT_NE(j.find(key), std::string::npos) << key << " missing in " << j;
  // Balanced braces; no trailing garbage.
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
}

TEST(MetricsExport, PrometheusExpositionStable) {
  const StreamGraph g = workloads::pipeline(2, 4);
  obs::MetricsRegistry reg(g.node_count(), g.edge_count());
  obs::bump(reg.node(1).fires, 9);
  obs::bump(reg.channel(0).dummies_pushed, 4);

  obs::SnapshotOptions opts;
  opts.backend = "pooled";
  opts.tenant = "t\"x\\y";
  auto s = obs::snapshot(g, reg, opts);
  obs::WorkerMetrics w;
  w.worker = 0;
  w.task_runs = 3;
  w.depth_avg = 1.5;
  s.workers.push_back(w);

  const std::string p = obs::to_prometheus(s);
  for (const char* family :
       {"# TYPE sdaf_node_fires_total counter",
        "# TYPE sdaf_node_dummy_out_total counter",
        "# TYPE sdaf_channel_data_pushed_total counter",
        "# TYPE sdaf_channel_occupancy gauge",
        "# TYPE sdaf_worker_task_runs_total counter",
        "# TYPE sdaf_worker_queue_depth_avg gauge",
        "# TYPE sdaf_tenant_dummy_overhead_ratio gauge",
        "# TYPE sdaf_stream_epoch gauge",
        "# TYPE sdaf_snapshots_total counter",
        "# TYPE sdaf_snapshot_pending gauge",
        "# TYPE sdaf_snapshot_duration_seconds gauge"})
    EXPECT_NE(p.find(family), std::string::npos) << family << " missing";
  // Label escaping: backslash then quote, each escaped.
  EXPECT_NE(p.find("tenant=\"t\\\"x\\\\y\""), std::string::npos) << p;
  // A concrete sample line with its value.
  const std::string fires_line = "sdaf_node_fires_total{tenant=\"t\\\"x\\\\y\""
                                 ",node=\"" +
                                 std::string(g.node_name(1)) + "\"} 9";
  EXPECT_NE(p.find(fires_line), std::string::npos) << p;
  EXPECT_NE(p.find("sdaf_tenant_dummy_items_total{tenant=\"t\\\"x\\\\y\"} 4"),
            std::string::npos)
      << p;
}

TEST(StreamMetrics, LiveSnapshotAcrossBackends) {
  for (const Backend backend :
       {Backend::Sim, Backend::Threaded, Backend::Pooled}) {
    SCOPED_TRACE(to_string(backend));
    const StreamGraph g = workloads::pipeline(3, 2);
    exec::Session session(g, workloads::passthrough_kernels(g));
    exec::StreamSpec sspec;
    sspec.run.backend = backend;
    sspec.run.mode = runtime::DummyMode::None;
    exec::Stream stream = session.open(sspec);

    for (int i = 0; i < 10; ++i) ASSERT_TRUE(stream.input(0).push());
    auto live = stream.metrics();
    EXPECT_EQ(live.schema, "sdaf.metrics.v1");
    EXPECT_EQ(live.backend, to_string(backend));
    ASSERT_EQ(live.ports.size(), 2u);  // one feed, one tap
    EXPECT_TRUE(live.ports[0].input);
    EXPECT_EQ(live.ports[0].pushed, 10u);
    EXPECT_FALSE(live.ports[1].input);

    stream.input(0).close();
    std::size_t polled = 0;
    while (auto item = stream.output(0).next()) ++polled;
    EXPECT_EQ(polled, 10u);
    ASSERT_TRUE(stream.finish().completed);

    const auto final_snap = stream.metrics();
    // 3 passthrough nodes x 10 items, counted by the shared firing core.
    EXPECT_EQ(final_snap.tenant.items_fired, 30u);
    ASSERT_EQ(final_snap.nodes.size(), 3u);
    for (const auto& n : final_snap.nodes) EXPECT_EQ(n.fires, 10u);
    EXPECT_EQ(final_snap.ports[1].pushed, 10u);  // tap saw every item
    if (backend == Backend::Pooled) {
      ASSERT_FALSE(final_snap.workers.empty());
      std::uint64_t runs = 0;
      for (const auto& w : final_snap.workers) runs += w.task_runs;
      EXPECT_GT(runs, 0u);
    } else {
      EXPECT_TRUE(final_snap.workers.empty());
    }
  }
}

// Checkpoint instrumentation on a live stream: a completed barrier bumps
// the snapshot counter, clears the pending gauge, and latches a duration;
// a restored stream reports its bumped epoch.
TEST(StreamMetrics, CheckpointCountersSurfaceInMetrics) {
  const StreamGraph g = workloads::pipeline(3, 2);
  exec::Session session(g, workloads::passthrough_kernels(g));
  exec::StreamSpec sspec;
  sspec.run.mode = runtime::DummyMode::None;
  exec::Stream stream = session.open(sspec);

  auto before = stream.metrics();
  EXPECT_EQ(before.ckpt.epoch, 0u);
  EXPECT_EQ(before.ckpt.snapshots_taken, 0u);
  EXPECT_FALSE(before.ckpt.snapshot_pending);

  for (int i = 0; i < 10; ++i) ASSERT_TRUE(stream.input(0).push());
  const auto snap = stream.snapshot(std::chrono::milliseconds(5000));
  ASSERT_TRUE(snap.has_value());

  auto after = stream.metrics();
  EXPECT_EQ(after.ckpt.snapshots_taken, 1u);
  EXPECT_FALSE(after.ckpt.snapshot_pending);
  EXPECT_GE(after.ckpt.last_snapshot_seconds, 0.0);
  const std::string page = obs::to_prometheus(after);
  EXPECT_NE(page.find("sdaf_snapshots_total{tenant=\"default\"} 1"),
            std::string::npos)
      << page;

  stream.input(0).close();
  while (stream.output(0).next()) {
  }
  ASSERT_TRUE(stream.finish().completed);

  exec::Session session2(g, workloads::passthrough_kernels(g));
  auto restored = session2.restore(sspec, *snap);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->metrics().ckpt.epoch, 1u);
  restored->input(0).close();
  while (restored->output(0).next()) {
  }
  (void)restored->finish();
}

TEST(StreamMetrics, DisabledRegistryStillReportsPorts) {
  const StreamGraph g = workloads::pipeline(2, 2);
  exec::Session session(g, workloads::passthrough_kernels(g));
  exec::StreamSpec sspec;
  sspec.run.mode = runtime::DummyMode::None;
  sspec.metrics = false;  // zero-overhead baseline
  exec::Stream stream = session.open(sspec);
  ASSERT_TRUE(stream.input(0).push());
  const auto snap = stream.metrics();
  EXPECT_TRUE(snap.nodes.empty());  // no registry attached
  ASSERT_EQ(snap.ports.size(), 2u);
  EXPECT_EQ(snap.ports[0].pushed, 1u);  // port gauges still live
  stream.input(0).close();
  (void)stream.finish();
}

TEST(SessionMetrics, TenantLedgerAccumulates) {
  const StreamGraph g = workloads::pipeline(3, 2);
  exec::Session session(g, workloads::passthrough_kernels(g));
  exec::RunSpec spec;
  spec.mode = runtime::DummyMode::None;
  spec.num_inputs = 10;
  spec.tenant = "alpha";
  ASSERT_TRUE(session.run(spec).completed);
  ASSERT_TRUE(session.run(spec).completed);
  spec.tenant = "beta";
  spec.num_inputs = 5;
  ASSERT_TRUE(session.run(spec).completed);

  const auto tenants = session.metrics();
  ASSERT_EQ(tenants.size(), 2u);  // sorted by name
  EXPECT_EQ(tenants[0].tenant, "alpha");
  EXPECT_EQ(tenants[0].runs, 2u);
  EXPECT_EQ(tenants[0].items_fired, 60u);  // 3 nodes x 10 x 2 runs
  EXPECT_EQ(tenants[0].data_items, 40u);   // 2 edges x 10 x 2 runs
  EXPECT_EQ(tenants[0].dummy_items, 0u);
  EXPECT_EQ(tenants[0].channel_slots, 4u);  // 2 edges x buffer 2
  EXPECT_EQ(tenants[0].channel_bytes, 4u * sizeof(runtime::Message));
  EXPECT_GE(tenants[0].wall_seconds, 0.0);
  EXPECT_EQ(tenants[1].tenant, "beta");
  EXPECT_EQ(tenants[1].runs, 1u);
  EXPECT_EQ(tenants[1].items_fired, 15u);
}

TEST(MetricsSampler, FoldsPeaksFromSource) {
  std::atomic<std::uint64_t> calls{0};
  auto source = [&]() {
    const std::uint64_t n = calls.fetch_add(1) + 1;
    obs::MetricsSnapshot s;
    s.channels.resize(1);
    s.channels[0].edge = 0;
    s.channels[0].occupancy = static_cast<std::int64_t>(n % 7);
    s.workers.resize(1);
    s.workers[0].depth_max = 5;
    return s;
  };
  obs::MetricsSampler::Options opts;
  opts.interval = std::chrono::milliseconds(1);
  opts.keep = 4;
  obs::MetricsSampler sampler(source, opts);
  // The constructor takes one synchronous sample, so latest() is valid
  // immediately; then wait for a few periodic ones.
  EXPECT_GE(sampler.sample_count(), 1u);
  while (sampler.sample_count() < 8)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  sampler.stop();
  const auto last = sampler.latest();
  ASSERT_EQ(last.channels.size(), 1u);
  EXPECT_GE(sampler.peak_occupancy(0), 1);
  EXPECT_LE(sampler.peak_occupancy(0), 6);
  EXPECT_EQ(sampler.peak_queue_depth(), 5u);
}

TEST(MetricsSampler, SamplesLiveStream) {
  // End-to-end: Stream::metrics is a valid sampler source while traffic is
  // in flight on a concurrent backend.
  const StreamGraph g = workloads::pipeline(3, 2);
  exec::Session session(g, workloads::passthrough_kernels(g));
  exec::StreamSpec sspec;
  sspec.run.backend = Backend::Pooled;
  sspec.run.mode = runtime::DummyMode::None;
  exec::Stream stream = session.open(sspec);
  obs::MetricsSampler::Options opts;
  opts.interval = std::chrono::milliseconds(1);
  obs::MetricsSampler sampler([&stream] { return stream.metrics(); }, opts);
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(stream.input(0).push());
  stream.input(0).close();
  while (stream.output(0).next().has_value()) {
  }
  ASSERT_TRUE(stream.finish().completed);
  // Wait for a sample taken after the run quiesced: counters are exact
  // then, so it must see every firing.
  const std::uint64_t before = sampler.sample_count();
  while (sampler.sample_count() <= before)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  sampler.stop();
  EXPECT_EQ(sampler.latest().tenant.items_fired, 600u);
}

}  // namespace
}  // namespace sdaf
