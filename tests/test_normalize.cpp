#include "src/graph/normalize.h"

#include <gtest/gtest.h>

#include "src/core/compile.h"
#include "src/graph/validate.h"
#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

TEST(Normalize, NoopOnTwoTerminalGraph) {
  const StreamGraph g = workloads::fig1_splitjoin();
  const auto n = normalize_two_terminal(g);
  EXPECT_FALSE(n.changed);
  EXPECT_EQ(n.virtual_source, kNoNode);
  EXPECT_EQ(n.virtual_sink, kNoNode);
  EXPECT_EQ(n.graph.node_count(), g.node_count());
  EXPECT_EQ(n.graph.edge_count(), g.edge_count());
}

TEST(Normalize, WrapsTwoSources) {
  // s1 -> j <- s2, j -> t: two sources, one sink.
  StreamGraph g;
  const NodeId s1 = g.add_node("s1");
  const NodeId s2 = g.add_node("s2");
  const NodeId j = g.add_node("j");
  const NodeId t = g.add_node("t");
  g.add_edge(s1, j, 4);
  g.add_edge(s2, j, 4);
  g.add_edge(j, t, 4);

  const auto n = normalize_two_terminal(g);
  EXPECT_TRUE(n.changed);
  ASSERT_NE(n.virtual_source, kNoNode);
  EXPECT_EQ(n.virtual_sink, kNoNode);
  EXPECT_TRUE(validate(n.graph).two_terminal());
  EXPECT_EQ(n.graph.edge_count(), g.edge_count() + 2);
  // Mapping: original edges first, then virtual ones.
  for (EdgeId e = 0; e < g.edge_count(); ++e) EXPECT_EQ(n.orig_edge[e], e);
  EXPECT_EQ(n.orig_edge[3], kNoEdge);
  EXPECT_EQ(n.orig_edge[4], kNoEdge);
}

TEST(Normalize, WrapsSinksToo) {
  StreamGraph g;
  const NodeId s = g.add_node();
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_edge(s, a, 2);
  g.add_edge(s, b, 2);
  const auto n = normalize_two_terminal(g);
  EXPECT_TRUE(n.changed);
  EXPECT_EQ(n.virtual_source, kNoNode);
  ASSERT_NE(n.virtual_sink, kNoNode);
  EXPECT_TRUE(validate(n.graph).two_terminal());
}

TEST(Normalize, SourceCoordinationBecomesForwarding) {
  // Two sources feeding a join: after wrapping, the cycle through the
  // virtual source makes each source's out-edge a continuation edge, so a
  // filtering source must forward sequence knowledge to the join.
  StreamGraph g;
  const NodeId s1 = g.add_node("s1");
  const NodeId s2 = g.add_node("s2");
  const NodeId j = g.add_node("j");
  const NodeId t = g.add_node("t");
  const EdgeId e1 = g.add_edge(s1, j, 4);
  const EdgeId e2 = g.add_edge(s2, j, 4);
  g.add_edge(j, t, 4);

  const auto n = normalize_two_terminal(g);
  const auto compiled = core::compile(n.graph);
  ASSERT_TRUE(compiled.ok);
  const auto& fwd = compiled.forward_on_filter();
  EXPECT_EQ(fwd[e1], 1);
  EXPECT_EQ(fwd[e2], 1);
  // With the default (effectively unbounded) virtual buffers the schedules
  // through virtual cycles are astronomically lazy.
  EXPECT_TRUE(compiled.intervals[e1].is_infinite() ||
              compiled.intervals[e1] > Rational(1'000'000));
}

TEST(Normalize, TightVirtualBufferTightensSchedules) {
  StreamGraph g;
  const NodeId s1 = g.add_node();
  const NodeId s2 = g.add_node();
  const NodeId j = g.add_node();
  const NodeId t = g.add_node();
  g.add_edge(s1, j, 4);
  g.add_edge(s2, j, 4);
  g.add_edge(j, t, 4);
  const auto n = normalize_two_terminal(g, /*virtual_buffer=*/2);
  const auto compiled = core::compile(n.graph);
  ASSERT_TRUE(compiled.ok);
  // Cycle <src>-s1-j-s2-<src>: the virtual out-edges get finite intervals
  // bounded by the opposite side's (2 + 4) budget.
  bool saw_finite_virtual = false;
  for (EdgeId e = 0; e < n.graph.edge_count(); ++e)
    if (n.orig_edge[e] == kNoEdge && compiled.intervals[e].is_finite())
      saw_finite_virtual = true;
  EXPECT_TRUE(saw_finite_virtual);
}

TEST(Normalize, ClassificationSurvivesWrapping) {
  // Wrapping two parallel pipelines yields an SP-DAG.
  StreamGraph g;
  const NodeId s1 = g.add_node();
  const NodeId m1 = g.add_node();
  const NodeId s2 = g.add_node();
  const NodeId m2 = g.add_node();
  const NodeId t1 = g.add_node();
  const NodeId t2 = g.add_node();
  g.add_edge(s1, m1, 2);
  g.add_edge(m1, t1, 2);
  g.add_edge(s2, m2, 2);
  g.add_edge(m2, t2, 2);
  const auto n = normalize_two_terminal(g);
  const auto compiled = core::compile(n.graph);
  EXPECT_TRUE(compiled.ok);
  EXPECT_EQ(compiled.classification, core::Classification::SpDag);
}

TEST(NormalizeDeathTest, RejectsNonPositiveVirtualBuffer) {
  const StreamGraph g = workloads::fig1_splitjoin();
  EXPECT_DEATH((void)normalize_two_terminal(g, 0), "precondition");
}

}  // namespace
}  // namespace sdaf
