#include "src/graph/topo.h"

#include <gtest/gtest.h>

#include "src/support/prng.h"
#include "src/workloads/random_ladder.h"
#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

bool respects_edges(const StreamGraph& g, const std::vector<NodeId>& order) {
  std::vector<std::size_t> pos(g.node_count());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    if (pos[g.edge(e).from] >= pos[g.edge(e).to]) return false;
  return true;
}

TEST(Topo, OrdersPipeline) {
  const StreamGraph g = workloads::pipeline(6);
  const auto order = topo_order(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->size(), 6u);
  EXPECT_TRUE(respects_edges(g, *order));
}

TEST(Topo, OrdersRandomDags) {
  Prng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = workloads::random_two_terminal_dag(rng, {});
    const auto order = topo_order(g);
    ASSERT_TRUE(order.has_value());
    EXPECT_TRUE(respects_edges(g, *order));
  }
}

TEST(Topo, DetectsDirectedCycle) {
  // Bypass add_edge's protections by building a cycle of length 3.
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  g.add_edge(a, b, 1);
  g.add_edge(b, c, 1);
  g.add_edge(c, a, 1);
  EXPECT_FALSE(topo_order(g).has_value());
}

TEST(ShortestBufferDist, Fig3) {
  const StreamGraph g = workloads::fig3_cycle();
  const auto dist = shortest_buffer_dist(g, 0);  // from a
  // a->b=2, a->c=3, b->e=5, c->d=1, e->f / d->f.
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 2);   // b
  EXPECT_EQ(dist[2], 3);   // c
  EXPECT_EQ(dist[3], 4);   // d via c
  EXPECT_EQ(dist[4], 7);   // e via b
  EXPECT_EQ(dist[5], 6);   // f: min(a-c-d-f=6, a-b-e-f=8)
}

TEST(ShortestBufferDist, UnreachableIsMinusOne) {
  const StreamGraph g = workloads::fig3_cycle();
  const auto dist = shortest_buffer_dist(g, 1);  // from b
  EXPECT_EQ(dist[0], -1);  // a unreachable from b
  EXPECT_EQ(dist[2], -1);  // c unreachable from b
  EXPECT_EQ(dist[4], 5);   // e
}

TEST(LongestHopDist, Fig3) {
  const StreamGraph g = workloads::fig3_cycle();
  const auto hops = longest_hop_dist(g, 0);
  EXPECT_EQ(hops[5], 3);  // both sides have 3 hops
  EXPECT_EQ(hops[1], 1);
}

TEST(LongestHopDist, PicksLongerBranch) {
  const StreamGraph g = workloads::splitjoin(/*width=*/2, /*depth=*/3);
  const auto hops = longest_hop_dist(g, g.unique_source());
  EXPECT_EQ(hops[g.unique_sink()], 4);  // 3 stages + join edge
}

TEST(Reachability, ForwardOnly) {
  const StreamGraph g = workloads::fig2_triangle();
  const auto reach = reachable_from(g, 1);  // from B
  EXPECT_FALSE(reach[0]);
  EXPECT_TRUE(reach[1]);
  EXPECT_TRUE(reach[2]);
}

}  // namespace
}  // namespace sdaf
