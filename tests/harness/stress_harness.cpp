#include "tests/harness/stress_harness.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <thread>

#include "src/qos/credit.h"
#include "src/ckpt/snapshot.h"
#include "src/core/compile.h"
#include "src/exec/session.h"
#include "src/runtime/pool_executor.h"
#include "src/support/contracts.h"
#include "src/support/timer.h"
#include "src/workloads/filters.h"
#include "src/workloads/random_ladder.h"
#include "src/workloads/random_sp.h"
#include "src/workloads/topologies.h"

namespace sdaf::harness {

using runtime::DummyMode;

const char* to_string(Topology t) {
  switch (t) {
    case Topology::Sp:
      return "sp";
    case Topology::Ladder:
      return "ladder";
    case Topology::Triangle:
      return "triangle";
    case Topology::Continuation:
      return "continuation";
  }
  return "?";
}

const char* to_string(FeedMode m) {
  switch (m) {
    case FeedMode::Batch:
      return "batch";
    case FeedMode::Port:
      return "port";
  }
  return "?";
}

const char* to_string(Sched s) {
  switch (s) {
    case Sched::Lifo:
      return "lifo";
    case Sched::Fifo:
      return "fifo";
    case Sched::StealHeavy:
      return "steal-heavy";
    case Sched::ParkStorm:
      return "park-storm";
  }
  return "?";
}

namespace {

std::optional<Sched> sched_from_string(const std::string& s) {
  for (const Sched v :
       {Sched::Lifo, Sched::Fifo, Sched::StealHeavy, Sched::ParkStorm})
    if (s == to_string(v)) return v;
  return std::nullopt;
}

// The pool configuration a non-default sched regime demands. All regimes
// salt the scheduler seed from the case so a repro line replays the same
// victim-selection and perturbation decisions.
runtime::PoolExecutor::Options pool_options_for(const CaseSpec& spec,
                                                std::size_t node_count) {
  runtime::PoolExecutor::Options opt;
  opt.seed = spec.seed ^ 0x5CEDC0DE5CEDC0DEull;
  switch (spec.sched) {
    case Sched::Lifo:
      break;
    case Sched::Fifo:
      opt.workers = 2;
      opt.lifo_slot = false;
      break;
    case Sched::StealHeavy:
      // More workers than node tasks: a worker's local enqueue is almost
      // always drained by somebody else, so every schedule is a steal.
      // Tiny deques force ring growth to race those steals.
      opt.workers = std::min<std::size_t>(16, node_count + 2);
      opt.deque_capacity = 2;
      opt.perturb_yield_in_256 = 64;
      break;
    case Sched::ParkStorm:
      // 1-step quanta bounce every task through the injector between
      // steps, and heavy perturbation makes workers go idle (and futex-
      // park) between bounces: the park/wake handshake dominates.
      opt.workers = 4;
      opt.max_steps_per_quantum = 1;
      opt.deque_capacity = 2;
      opt.perturb_yield_in_256 = 128;
      break;
  }
  return opt;
}

std::optional<Topology> topology_from_string(const std::string& s) {
  for (const Topology t : {Topology::Sp, Topology::Ladder, Topology::Triangle,
                           Topology::Continuation})
    if (s == to_string(t)) return t;
  return std::nullopt;
}

const char* mode_name(DummyMode m) {
  switch (m) {
    case DummyMode::Propagation:
      return "prop";
    case DummyMode::NonPropagation:
      return "nonprop";
    case DummyMode::None:
      return "none";
  }
  return "?";
}

std::optional<DummyMode> mode_from_string(const std::string& s) {
  for (const DummyMode m :
       {DummyMode::Propagation, DummyMode::NonPropagation, DummyMode::None})
    if (s == mode_name(m)) return m;
  return std::nullopt;
}

}  // namespace

std::string to_string(const CaseSpec& spec) {
  char pass[64];
  std::snprintf(pass, sizeof(pass), "%.17g", spec.pass_rate);
  std::ostringstream out;
  out << "topo=" << to_string(spec.topology) << " seed=" << spec.seed
      << " inputs=" << spec.num_inputs << " pass=" << pass
      << " mode=" << mode_name(spec.mode) << " batch=" << spec.batch
      << " feed=" << to_string(spec.feed) << " chunk=" << spec.chunk
      << " sched=" << to_string(spec.sched) << " tenants=" << spec.tenants;
  return out.str();
}

std::optional<CaseSpec> parse_case(const std::string& line) {
  CaseSpec spec;
  std::istringstream in(line);
  std::string token;
  bool saw_topo = false;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    try {
      if (key == "topo") {
        const auto t = topology_from_string(value);
        if (!t.has_value()) return std::nullopt;
        spec.topology = *t;
        saw_topo = true;
      } else if (key == "seed") {
        spec.seed = std::stoull(value);
      } else if (key == "inputs") {
        spec.num_inputs = std::stoull(value);
      } else if (key == "pass") {
        spec.pass_rate = std::stod(value);
      } else if (key == "mode") {
        const auto m = mode_from_string(value);
        if (!m.has_value()) return std::nullopt;
        spec.mode = *m;
      } else if (key == "batch") {
        spec.batch = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "feed") {
        if (value == "batch")
          spec.feed = FeedMode::Batch;
        else if (value == "port")
          spec.feed = FeedMode::Port;
        else
          return std::nullopt;
      } else if (key == "chunk") {
        spec.chunk = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "sched") {
        // Pre-scheduler-v2 repro lines omit this key; default Lifo.
        const auto s = sched_from_string(value);
        if (!s.has_value()) return std::nullopt;
        spec.sched = *s;
      } else if (key == "tenants") {
        // Pre-qos repro lines omit this key; default 1 (single-tenant).
        spec.tenants = static_cast<std::uint32_t>(std::stoul(value));
        if (spec.tenants == 0) return std::nullopt;
      } else {
        return std::nullopt;
      }
    } catch (...) {
      return std::nullopt;
    }
  }
  if (!saw_topo) return std::nullopt;
  return spec;
}

std::string repro_command(const CaseSpec& spec) {
  return "SDAF_HARNESS_REPRO='" + to_string(spec) +
         "' ./test_harness_stress --gtest_filter=HarnessStress.ReproFromEnv";
}

StreamGraph build_topology(const CaseSpec& spec) {
  Prng rng(spec.seed);
  switch (spec.topology) {
    case Topology::Sp: {
      workloads::RandomSpOptions opt;
      opt.target_edges = 4 + static_cast<std::size_t>(rng.next_below(16));
      opt.max_buffer = 1 + static_cast<std::int64_t>(rng.next_below(6));
      return workloads::random_sp(rng, opt).graph;
    }
    case Topology::Ladder: {
      workloads::RandomLadderOptions opt;
      opt.rungs = 1 + static_cast<std::size_t>(rng.next_below(3));
      opt.left_interior = 1 + static_cast<std::size_t>(rng.next_below(4));
      opt.right_interior = 1 + static_cast<std::size_t>(rng.next_below(4));
      opt.component_edges = 1 + static_cast<std::size_t>(rng.next_below(3));
      opt.max_buffer = 1 + static_cast<std::int64_t>(rng.next_below(6));
      return workloads::random_ladder(rng, opt);
    }
    case Topology::Triangle:
      return workloads::fig2_triangle(
          1 + static_cast<std::int64_t>(rng.next_below(3)),
          1 + static_cast<std::int64_t>(rng.next_below(3)),
          1 + static_cast<std::int64_t>(rng.next_below(3)));
    case Topology::Continuation:
      return workloads::continuation_ladder(
          1 + static_cast<std::size_t>(rng.next_below(4)),
          /*fat=*/8 + static_cast<std::int64_t>(rng.next_below(57)),
          /*tight=*/1);
  }
  SDAF_ASSERT(false);
  return {};
}

std::vector<std::shared_ptr<runtime::Kernel>> build_kernels(
    const StreamGraph& g, const CaseSpec& spec) {
  if (spec.topology == Topology::Triangle) {
    // The Fig. 2 wedge driver: the source filters everything on the long
    // path for the whole run, so without avoidance the triangle deadlocks
    // once the direct edge fills.
    std::vector<std::shared_ptr<runtime::Kernel>> kernels;
    kernels.push_back(std::make_shared<runtime::RelayKernel>(
        workloads::adversarial_prefix_filter(1, spec.num_inputs)));
    kernels.push_back(runtime::pass_through_kernel());
    kernels.push_back(runtime::pass_through_kernel());
    return kernels;
  }
  return workloads::relay_kernels(g, spec.pass_rate, spec.seed);
}

namespace {

exec::RunSpec make_run_spec(const StreamGraph& g, const CaseSpec& spec) {
  exec::RunSpec rs;
  rs.mode = spec.mode;
  rs.num_inputs = spec.num_inputs;
  rs.batch = spec.batch;
  rs.pool_workers = 2;
  if (spec.mode != DummyMode::None) {
    core::CompileOptions copt;
    copt.algorithm = spec.mode == DummyMode::Propagation
                         ? core::Algorithm::Propagation
                         : core::Algorithm::NonPropagation;
    const auto compiled = core::compile(g, copt);
    SDAF_EXPECTS(compiled.ok);
    rs.apply(compiled);
  }
  return rs;
}

// The dump contract: emitted exactly when deadlocked, and then it names
// edges and nodes (the pooled backend emits it at exact quiescence).
std::optional<std::string> check_dump(const exec::RunReport& report,
                                      const std::string& label) {
  if (report.deadlocked) {
    if (report.state_dump.empty())
      return label + ": deadlocked but state_dump is empty";
    if (report.state_dump.find("edge ") == std::string::npos ||
        report.state_dump.find("node ") == std::string::npos)
      return label + ": state_dump lacks edge/node lines";
  } else if (!report.state_dump.empty()) {
    return label + ": completed run has a non-empty state_dump";
  }
  return std::nullopt;
}

std::optional<std::string> compare_reports(const exec::RunReport& expected,
                                           const exec::RunReport& actual,
                                           const std::string& label) {
  std::ostringstream out;
  if (expected.deadlocked != actual.deadlocked ||
      expected.completed != actual.completed) {
    out << label << ": verdict mismatch (reference "
        << (expected.deadlocked ? "deadlocked" : "completed") << ", got "
        << (actual.deadlocked ? "deadlocked" : "completed") << ")";
    return out.str();
  }
  if (expected.fires != actual.fires) return label + ": fires mismatch";
  if (expected.sink_data != actual.sink_data)
    return label + ": sink_data mismatch";
  if (expected.edges.size() != actual.edges.size())
    return label + ": edge count mismatch";
  for (std::size_t e = 0; e < expected.edges.size(); ++e) {
    if (expected.edges[e].data != actual.edges[e].data ||
        expected.edges[e].dummies != actual.edges[e].dummies) {
      out << label << ": edge " << e << " traffic mismatch (reference "
          << expected.edges[e].data << "+" << expected.edges[e].dummies
          << "d, got " << actual.edges[e].data << "+"
          << actual.edges[e].dummies << "d)";
      return out.str();
    }
  }
  return std::nullopt;
}

}  // namespace

namespace {

// The live-port equivalent of the batch run: push exactly num_inputs firing
// tokens per source in randomized chunks (pacing decorrelated from the
// topology seed), opportunistically draining the egress taps between
// chunks, then dynamic close + finish. Feed capacity covers the whole run
// so a wedged workload can never park the harness in push() -- the verdict
// always arrives from finish(). Bit-identity with the batch run is the
// property under test.
exec::RunReport run_backend_port(const StreamGraph& g, const CaseSpec& spec,
                                 exec::Backend backend,
                                 runtime::PoolExecutor* pool) {
  exec::Session session(g, build_kernels(g, spec));
  exec::StreamSpec ss;
  ss.run = make_run_spec(g, spec);
  ss.run.backend = backend;
  ss.run.pool = pool;
  ss.feed_capacity = static_cast<std::size_t>(spec.num_inputs) + 1;
  ss.egress_capacity = static_cast<std::size_t>(spec.num_inputs) + 2;
  exec::Stream stream = session.open(ss);
  Prng pacing(spec.seed ^ 0xFEEDF00Dull);
  const std::uint32_t max_chunk = std::max<std::uint32_t>(1, spec.chunk);
  std::uint64_t pushed = 0;
  while (pushed < spec.num_inputs) {
    const std::uint64_t chunk = std::min<std::uint64_t>(
        1 + pacing.next_below(max_chunk), spec.num_inputs - pushed);
    // Coalesced ingest: one push_batch per chunk per port, so the whole
    // randomized port-vs-batch sweep also proves the bulk fast path
    // (single segment reservation + publish) bit-identical.
    for (std::size_t i = 0; i < stream.input_count(); ++i) {
      const std::size_t accepted = stream.input(i).push_batch(
          std::vector<runtime::Value>(static_cast<std::size_t>(chunk)));
      SDAF_EXPECTS(accepted == chunk);
    }
    pushed += chunk;
    for (std::size_t i = 0; i < stream.output_count(); ++i)
      while (stream.output(i).poll().has_value()) {
      }
  }
  for (std::size_t i = 0; i < stream.input_count(); ++i)
    stream.input(i).close();
  return stream.finish();
}

}  // namespace

exec::RunReport run_backend(const StreamGraph& g, const CaseSpec& spec,
                            exec::Backend backend,
                            runtime::PoolExecutor* pool) {
  // A non-default scheduling regime needs its own adversarially configured
  // pool; the caller's shared pool keeps its production options.
  std::unique_ptr<runtime::PoolExecutor> perturbed;
  if (backend == exec::Backend::Pooled && spec.sched != Sched::Lifo) {
    perturbed = std::make_unique<runtime::PoolExecutor>(
        pool_options_for(spec, g.node_count()));
    pool = perturbed.get();
  }
  if (spec.feed == FeedMode::Port)
    return run_backend_port(g, spec, backend, pool);
  exec::Session session(g, build_kernels(g, spec));
  exec::RunSpec rs = make_run_spec(g, spec);
  rs.backend = backend;
  rs.pool = pool;
  return session.run(rs);
}

std::optional<std::string> run_differential(const CaseSpec& spec,
                                            runtime::PoolExecutor* pool,
                                            bool* reference_deadlocked) {
  const StreamGraph g = build_topology(spec);
  exec::Session session(g, build_kernels(g, spec));
  exec::RunSpec rs = make_run_spec(g, spec);
  rs.pool = pool;

  // The reference is always the batch-fed simulator: in Port mode that
  // makes the check exactly "a port-fed run pushing the same N items is
  // bit-identical to the equivalent num_inputs batch run", on every
  // backend including the port-fed simulator itself.
  rs.backend = exec::Backend::Sim;
  const exec::RunReport reference = session.run(rs);
  if (reference_deadlocked != nullptr)
    *reference_deadlocked = reference.deadlocked;
  if (auto err = check_dump(reference, "sim"); err.has_value())
    return *err + "\n  repro: " + repro_command(spec);

  std::vector<exec::Backend> backends = {exec::Backend::Threaded,
                                         exec::Backend::Pooled};
  if (spec.feed == FeedMode::Port)
    backends.insert(backends.begin(), exec::Backend::Sim);
  for (const exec::Backend backend : backends) {
    const exec::RunReport report = run_backend(g, spec, backend, pool);
    const std::string label = std::string(exec::to_string(backend)) +
                              (spec.feed == FeedMode::Port ? "+port" : "");
    auto err = compare_reports(reference, report, label);
    if (!err.has_value()) err = check_dump(report, label);
    if (err.has_value())
      return *err + "\n  case: " + to_string(spec) +
             "\n  repro: " + repro_command(spec);
  }
  return std::nullopt;
}

std::optional<std::string> run_multitenant_differential(
    const CaseSpec& spec, runtime::PoolExecutor* pool) {
  SDAF_EXPECTS(spec.tenants >= 1);
  SDAF_EXPECTS(pool != nullptr);  // sharing the pool is the point
  const StreamGraph g = build_topology(spec);

  // Solo reference: the batch-fed deterministic simulator, exactly as in
  // run_differential.
  exec::RunReport reference;
  {
    exec::Session session(g, build_kernels(g, spec));
    exec::RunSpec rs = make_run_spec(g, spec);
    rs.backend = exec::Backend::Sim;
    reference = session.run(rs);
  }
  if (auto err = check_dump(reference, "sim"); err.has_value())
    return *err + "\n  repro: " + repro_command(spec);

  // N concurrent port-fed pooled copies on the one shared (DRR) pool, each
  // under a distinct tenant label and weight. Avoidance-armed copies also
  // run under a tight per-tenant credit window so the acquire/park/release
  // path is exercised under real cross-tenant concurrency; wedge-capable
  // (mode None) copies run uncredited -- a wedged stream never returns its
  // credits, and the harness must reach finish() to collect the verdict.
  std::vector<exec::RunReport> reports(spec.tenants);
  std::vector<std::string> errors(spec.tenants);
  {
    std::vector<std::thread> drivers;
    drivers.reserve(spec.tenants);
    for (std::uint32_t t = 0; t < spec.tenants; ++t) {
      drivers.emplace_back([&, t] {
        try {
          qos::CreditGauge credits(1 + spec.num_inputs / 4);
          exec::Session session(g, build_kernels(g, spec));
          exec::StreamSpec ss;
          ss.run = make_run_spec(g, spec);
          ss.run.backend = exec::Backend::Pooled;
          ss.run.pool = pool;
          ss.run.tenant = "t" + std::to_string(t);
          ss.run.tenant_weight = static_cast<double>(t + 1);
          if (spec.mode != DummyMode::None) ss.run.credits = &credits;
          ss.feed_capacity = static_cast<std::size_t>(spec.num_inputs) + 1;
          ss.egress_capacity = static_cast<std::size_t>(spec.num_inputs) + 2;
          exec::Stream stream = session.open(ss);
          // Pacing decorrelated per tenant, so the copies interleave their
          // pushes instead of marching in lockstep.
          Prng pacing(spec.seed ^ (0xFEEDF00Dull + 0x9E3779B9ull * (t + 1)));
          const std::uint32_t max_chunk =
              std::max<std::uint32_t>(1, spec.chunk);
          std::uint64_t pushed = 0;
          while (pushed < spec.num_inputs) {
            const std::uint64_t chunk = std::min<std::uint64_t>(
                1 + pacing.next_below(max_chunk), spec.num_inputs - pushed);
            for (std::size_t i = 0; i < stream.input_count(); ++i) {
              const std::size_t accepted = stream.input(i).push_batch(
                  std::vector<runtime::Value>(static_cast<std::size_t>(chunk)));
              SDAF_EXPECTS(accepted == chunk);
            }
            pushed += chunk;
            for (std::size_t i = 0; i < stream.output_count(); ++i)
              while (stream.output(i).poll().has_value()) {
              }
          }
          for (std::size_t i = 0; i < stream.input_count(); ++i)
            stream.input(i).close();
          reports[t] = stream.finish();
        } catch (const std::exception& e) {
          errors[t] = std::string("driver threw: ") + e.what();
        }
      });
    }
    for (auto& d : drivers) d.join();
  }

  for (std::uint32_t t = 0; t < spec.tenants; ++t) {
    const std::string label = "tenant t" + std::to_string(t);
    if (!errors[t].empty())
      return label + ": " + errors[t] + "\n  case: " + to_string(spec) +
             "\n  repro: " + repro_command(spec);
    auto err = compare_reports(reference, reports[t], label);
    if (!err.has_value()) err = check_dump(reports[t], label);
    if (err.has_value())
      return *err + "\n  case: " + to_string(spec) +
             "\n  repro: " + repro_command(spec);
  }
  return std::nullopt;
}

namespace {

// One tap's delivered items, deduplicated by seq -- the client-side half of
// the exactly-once contract (a restore may re-deliver residue the client
// already has). Returns an error string on a payload mismatch between a
// re-delivery and the original.
struct DeliveredSet {
  std::map<std::uint64_t, std::int64_t> items;

  std::optional<std::string> add(const exec::OutputPort::Item& item,
                                 const std::string& label) {
    const std::int64_t v =
        item.value.has_value() ? item.value.as<std::int64_t>() : -1;
    const auto [it, inserted] = items.emplace(item.seq, v);
    if (!inserted && it->second != v) {
      std::ostringstream out;
      out << label << ": re-delivered seq " << item.seq << " changed payload ("
          << it->second << " -> " << v << ")";
      return out.str();
    }
    return std::nullopt;
  }
};

std::string crash_label(const CaseSpec& spec, exec::Backend backend,
                        std::uint64_t crash_seed) {
  return "\n  case: " + to_string(spec) + " crash=" +
         std::to_string(crash_seed) + " backend=" + exec::to_string(backend) +
         "\n  repro: SDAF_CRASH_REPRO='" + to_string(spec) +
         " crash=" + std::to_string(crash_seed) +
         " backend=" + exec::to_string(backend) +
         "' ./test_crash_recovery --gtest_filter=CrashRecovery.ReproFromEnv";
}

}  // namespace

std::optional<std::string> run_crash_differential(const CaseSpec& spec,
                                                  exec::Backend backend,
                                                  std::uint64_t crash_seed,
                                                  runtime::PoolExecutor* pool) {
  SDAF_EXPECTS(spec.mode != DummyMode::None);
  const StreamGraph g = build_topology(spec);
  // Same substitution as run_backend: a non-default sched regime gets its
  // own pool, shared by the pre-crash and post-restore phases (the pool
  // outlives instances, like a daemon surviving its streams).
  std::unique_ptr<runtime::PoolExecutor> perturbed;
  if (backend == exec::Backend::Pooled && spec.sched != Sched::Lifo) {
    perturbed = std::make_unique<runtime::PoolExecutor>(
        pool_options_for(spec, g.node_count()));
    pool = perturbed.get();
  }
  exec::StreamSpec ss;
  ss.run = make_run_spec(g, spec);
  ss.run.backend = backend;
  ss.run.pool = pool;
  // Feeds and taps sized for the whole run: the differential is about the
  // cut, not backpressure, so neither side may park.
  ss.feed_capacity = static_cast<std::size_t>(spec.num_inputs) + 1;
  ss.egress_capacity = static_cast<std::size_t>(spec.num_inputs) + 2;
  constexpr std::chrono::milliseconds kBarrier{30000};

  // Uninterrupted reference: the port-fed deterministic simulator, outputs
  // captured per tap.
  std::vector<std::vector<exec::OutputPort::Item>> want;
  exec::RunReport want_report;
  {
    exec::Session session(g, build_kernels(g, spec));
    exec::StreamSpec ref = ss;
    ref.run.backend = exec::Backend::Sim;
    ref.run.pool = nullptr;
    exec::Stream stream = session.open(ref);
    for (std::size_t i = 0; i < stream.input_count(); ++i) {
      stream.input(i).push_batch(std::vector<runtime::Value>(
          static_cast<std::size_t>(spec.num_inputs)));
      stream.input(i).close();
    }
    want.resize(stream.output_count());
    for (std::size_t j = 0; j < stream.output_count(); ++j)
      while (auto item = stream.output(j).next()) want[j].push_back(*item);
    want_report = stream.finish();
    if (!want_report.completed)
      return "crash reference did not complete" +
             crash_label(spec, backend, crash_seed);
  }

  Prng rng(crash_seed);
  // One case in ten crashes at the terminal cut: everything pushed and
  // closed, the barrier completing through the finished set alone.
  const bool terminal = rng.next_below(100) < 10;
  const std::uint64_t cut =
      terminal ? spec.num_inputs : 1 + rng.next_below(spec.num_inputs);
  std::vector<DeliveredSet> delivered;
  std::vector<std::uint8_t> snapshot_bytes;

  // Phase 1: run to the cut and crash at the barrier. Only `delivered` and
  // `snapshot_bytes` survive the scope -- the stream, its session and its
  // kernels are gone, exactly like the process that died.
  {
    exec::Session session(g, build_kernels(g, spec));
    exec::Stream stream = session.open(ss);
    delivered.resize(stream.output_count());
    const std::uint32_t max_chunk = std::max<std::uint32_t>(1, spec.chunk);
    std::uint64_t pushed = 0;
    while (pushed < cut) {
      const std::uint64_t chunk =
          std::min<std::uint64_t>(1 + rng.next_below(max_chunk), cut - pushed);
      for (std::size_t i = 0; i < stream.input_count(); ++i) {
        const std::size_t accepted = stream.input(i).push_batch(
            std::vector<runtime::Value>(static_cast<std::size_t>(chunk)));
        SDAF_EXPECTS(accepted == chunk);
      }
      pushed += chunk;
      // Opportunistic client-side draining: some items are delivered before
      // the crash, so the restore's residue re-delivery overlaps them.
      for (std::size_t j = 0; j < stream.output_count(); ++j)
        while (auto item = stream.output(j).poll())
          if (auto err = delivered[j].add(*item, "pre-crash"); err.has_value())
            return *err + crash_label(spec, backend, crash_seed);
    }
    if (terminal)
      for (std::size_t i = 0; i < stream.input_count(); ++i)
        stream.input(i).close();
    const auto snap = stream.snapshot(kBarrier);
    if (!snap.has_value())
      return "snapshot did not complete at the barrier" +
             crash_label(spec, backend, crash_seed);
    snapshot_bytes = ckpt::serialize(*snap);
    (void)stream.finish();
  }

  // Phase 2: rehydrate from the serialized bytes in a fresh session and
  // replay every port from its cut.
  const auto snap = ckpt::deserialize(snapshot_bytes);
  if (!snap.has_value())
    return "snapshot bytes did not round-trip" +
           crash_label(spec, backend, crash_seed);
  exec::Session session(g, build_kernels(g, spec));
  auto restored = session.restore(ss, *snap);
  if (!restored.has_value())
    return "Session::restore refused its own snapshot" +
           crash_label(spec, backend, crash_seed);
  for (std::size_t i = 0; i < restored->input_count(); ++i) {
    auto& port = restored->input(i);
    if (port.closed()) continue;
    const std::uint64_t replay_from = snap->ports[i].next_seq;
    SDAF_EXPECTS(port.pushed() == replay_from);
    const std::size_t accepted = port.push_batch(std::vector<runtime::Value>(
        static_cast<std::size_t>(spec.num_inputs - replay_from)));
    SDAF_EXPECTS(accepted == spec.num_inputs - replay_from);
    port.close();
  }
  for (std::size_t j = 0; j < restored->output_count(); ++j)
    while (auto item = restored->output(j).next())
      if (auto err = delivered[j].add(*item, "post-restore"); err.has_value())
        return *err + crash_label(spec, backend, crash_seed);
  const exec::RunReport report = restored->finish();

  // The verdict, counters and traffic resume exactly.
  if (auto err = compare_reports(want_report, report, "crash+restore");
      err.has_value())
    return *err + crash_label(spec, backend, crash_seed);
  // The delivered set (pre-crash + re-delivered residue + post-restore),
  // deduped by seq, is exactly the uninterrupted output stream.
  for (std::size_t j = 0; j < want.size(); ++j) {
    if (delivered[j].items.size() != want[j].size()) {
      std::ostringstream out;
      out << "tap " << j << ": delivered " << delivered[j].items.size()
          << " distinct items, reference delivered " << want[j].size();
      return out.str() + crash_label(spec, backend, crash_seed);
    }
    auto it = delivered[j].items.begin();
    for (const auto& ref : want[j]) {
      const std::int64_t ref_v =
          ref.value.has_value() ? ref.value.as<std::int64_t>() : -1;
      if (it->first != ref.seq || it->second != ref_v) {
        std::ostringstream out;
        out << "tap " << j << ": item mismatch at seq " << ref.seq
            << " (reference " << ref_v << ", got seq " << it->first << " = "
            << it->second << ")";
        return out.str() + crash_label(spec, backend, crash_seed);
      }
      ++it;
    }
  }
  return std::nullopt;
}

CaseSpec random_case(Prng& rng) {
  CaseSpec spec;
  const std::uint64_t t = rng.next_below(100);
  spec.topology = t < 40   ? Topology::Sp
                  : t < 70 ? Topology::Ladder
                  : t < 85 ? Topology::Triangle
                           : Topology::Continuation;
  spec.seed = rng.next_u64();
  spec.num_inputs = 20 + rng.next_below(80);
  spec.pass_rate = 0.2 + 0.8 * rng.next_double();
  const std::uint64_t m = rng.next_below(100);
  spec.mode = m < 40   ? DummyMode::Propagation
              : m < 80 ? DummyMode::NonPropagation
                       : DummyMode::None;
  if (spec.mode == DummyMode::None) {
    // Unprotected verdicts are only exact at message-at-a-time pacing:
    // batch > 1 acts like extra buffering and may mask a hazard.
    spec.batch = 1;
  } else {
    const std::uint32_t batches[] = {1, 7, 64};
    spec.batch = batches[rng.next_below(3)];
  }
  spec.feed = rng.next_below(100) < 30 ? FeedMode::Port : FeedMode::Batch;
  spec.chunk = 1 + static_cast<std::uint32_t>(rng.next_below(8));
  const std::uint64_t s = rng.next_below(100);
  spec.sched = s < 50   ? Sched::Lifo
               : s < 70 ? Sched::Fifo
               : s < 85 ? Sched::StealHeavy
                        : Sched::ParkStorm;
  return spec;
}

SweepResult sweep_random_cases(std::uint64_t sweep_seed, double seconds,
                               int max_cases, runtime::PoolExecutor* pool,
                               std::optional<FeedMode> forced_feed,
                               std::optional<Sched> forced_sched) {
  SweepResult result;
  Prng rng(sweep_seed);
  Stopwatch clock;
  // SDAF_STRESS_VERBOSE: one line per case before it runs, so a hang (not
  // just a mismatch) identifies its case.
  const bool verbose = std::getenv("SDAF_STRESS_VERBOSE") != nullptr;
  while (result.cases_run < max_cases &&
         (result.cases_run == 0 || clock.elapsed_seconds() < seconds)) {
    CaseSpec spec = random_case(rng);
    if (forced_feed.has_value()) spec.feed = *forced_feed;
    if (forced_sched.has_value()) spec.sched = *forced_sched;
    if (verbose) std::fprintf(stderr, "case: %s\n", to_string(spec).c_str());
    bool deadlocked = false;
    result.failure = run_differential(spec, pool, &deadlocked);
    if (deadlocked) ++result.deadlocks;
    ++result.cases_run;
    if (result.failure.has_value()) break;
  }
  return result;
}

SweepResult sweep_multitenant_cases(std::uint64_t sweep_seed, double seconds,
                                    int max_cases,
                                    runtime::PoolExecutor* pool) {
  SweepResult result;
  Prng rng(sweep_seed);
  Stopwatch clock;
  const bool verbose = std::getenv("SDAF_STRESS_VERBOSE") != nullptr;
  while (result.cases_run < max_cases &&
         (result.cases_run == 0 || clock.elapsed_seconds() < seconds)) {
    CaseSpec spec = random_case(rng);
    // The shared pool keeps its production regime; the adversarial sched
    // pools are single-tenant by construction (SchedPerturbationSweep).
    spec.sched = Sched::Lifo;
    spec.tenants = 2 + static_cast<std::uint32_t>(rng.next_below(2));
    if (verbose) std::fprintf(stderr, "case: %s\n", to_string(spec).c_str());
    result.failure = run_multitenant_differential(spec, pool);
    ++result.cases_run;
    if (result.failure.has_value()) break;
  }
  return result;
}

SweepResult sweep_crash_cases(std::uint64_t sweep_seed, double seconds,
                              int max_cases, runtime::PoolExecutor* pool) {
  SweepResult result;
  Prng rng(sweep_seed);
  Stopwatch clock;
  const bool verbose = std::getenv("SDAF_STRESS_VERBOSE") != nullptr;
  constexpr exec::Backend kBackends[] = {
      exec::Backend::Sim, exec::Backend::Threaded, exec::Backend::Pooled};
  while (result.cases_run < max_cases &&
         (result.cases_run == 0 || clock.elapsed_seconds() < seconds)) {
    CaseSpec spec = random_case(rng);
    spec.feed = FeedMode::Port;  // the crash differential is port-fed
    if (spec.mode == DummyMode::None) {
      // Only avoidance-armed streams are wedge-free; a wedged barrier never
      // completes, so unprotected cases have no crash differential.
      spec.mode = DummyMode::Propagation;
      const std::uint32_t batches[] = {1, 7, 64};
      spec.batch = batches[rng.next_below(3)];
    }
    const exec::Backend backend = kBackends[rng.next_below(3)];
    const std::uint64_t crash_seed = rng.next_u64();
    if (verbose)
      std::fprintf(stderr, "crash case: %s crash=%llu backend=%s\n",
                   to_string(spec).c_str(),
                   static_cast<unsigned long long>(crash_seed),
                   exec::to_string(backend));
    result.failure = run_crash_differential(spec, backend, crash_seed, pool);
    ++result.cases_run;
    if (result.failure.has_value()) break;
  }
  return result;
}

}  // namespace sdaf::harness
