// Reusable randomized stress / differential harness for the execution
// backends. One seeded CaseSpec fully determines a workload -- topology,
// kernels, dummy mode, firing quantum -- and the harness runs it through
// the deterministic simulator (the reference), the thread-per-node
// executor, and the pooled scheduler, requiring bit-identical verdicts,
// per-edge traffic, firing counts and sink deliveries.
//
// On mismatch the harness reports a one-line repro command
// (SDAF_HARNESS_REPRO='<spec>' ./test_harness_stress ...), so a failure
// found by a time-boxed random sweep -- locally, in CI, or under TSan/ASan
// via `tools/ci.sh --stress` -- replays as a deterministic single case.
//
// The library is gtest-free on purpose: tests assert on the returned
// optional mismatch string, and tools can link it without a test driver.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/exec/run_types.h"
#include "src/graph/stream_graph.h"
#include "src/runtime/kernel.h"
#include "src/support/prng.h"

namespace sdaf::runtime {
class PoolExecutor;
}  // namespace sdaf::runtime

namespace sdaf::harness {

enum class Topology : std::uint8_t {
  Sp,            // random series-parallel DAG (workloads::random_sp)
  Ladder,        // random SP-ladder (workloads::random_ladder)
  Triangle,      // Fig. 2 triangle + adversarial prefix filter (the wedge)
  Continuation,  // dummy-dense continuation ladder (coalescing worst case)
};

[[nodiscard]] const char* to_string(Topology t);

// How the workload's items reach the sources.
enum class FeedMode : std::uint8_t {
  Batch,  // classic: Session::run with RunSpec::num_inputs
  Port,   // live: Session::open, randomized push chunking/pacing through
          // InputPorts (tokens, so kernels fire exactly as in batch mode),
          // outputs drained through the egress taps, dynamic close()
};

[[nodiscard]] const char* to_string(FeedMode m);

// Scheduling regime for the pooled backend: every mode must produce
// bit-identical results (the scheduler is free to reorder execution, never
// to change semantics). Non-default modes run on a private PoolExecutor
// whose options force the adversarial paths -- more workers than nodes so
// every wake is a steal, injected yield points (Options::perturb_yield_in_256
// seeded from the case), tiny deques so rings grow mid-steal, a 1-step
// quantum so tasks bounce through the injector and workers park constantly.
enum class Sched : std::uint8_t {
  Lifo,        // production defaults: shared pool, hot slot on
  Fifo,        // lifo_slot off -- workers drain their own deque FIFO
  StealHeavy,  // workers > nodes, tiny deques, perturbed: steals dominate
  ParkStorm,   // 1-step quantum + heavy perturbation: park/wake dominate
};

[[nodiscard]] const char* to_string(Sched s);

// Everything that determines one workload, bit for bit. `seed` shapes the
// graph (buffer sizes, structure) and decorrelates the kernel filters;
// `mode` None disables avoidance (batch is then pinned to 1 by
// random_case -- unprotected deadlock verdicts are only exact at the
// paper's message-at-a-time pacing). `feed` Port runs the same workload
// through the streaming ports, with `chunk` bounding the randomized push
// chunk size; the reference is always the batch-fed simulator, so every
// port-fed backend is differential-tested bit-identical to the equivalent
// num_inputs batch run.
struct CaseSpec {
  Topology topology = Topology::Sp;
  std::uint64_t seed = 1;
  std::uint64_t num_inputs = 50;
  double pass_rate = 0.7;
  runtime::DummyMode mode = runtime::DummyMode::Propagation;
  std::uint32_t batch = 1;
  FeedMode feed = FeedMode::Batch;
  std::uint32_t chunk = 8;  // Port only: pushes land in chunks of 1..chunk
  Sched sched = Sched::Lifo;
  // Multi-tenant axis (qos): run_multitenant_differential runs this many
  // concurrent port-fed copies of the case on ONE shared pool, tenant i
  // labeled "t<i>" at DRR weight i+1 (and, when avoidance-armed, under a
  // per-tenant credit window), each required bit-identical to the solo
  // batch-fed simulator reference. 1 = the classic single-tenant case.
  std::uint32_t tenants = 1;
};

// One-line `key=value ...` form; parse_case is its exact inverse.
[[nodiscard]] std::string to_string(const CaseSpec& spec);
[[nodiscard]] std::optional<CaseSpec> parse_case(const std::string& line);
// Shell one-liner that replays exactly this case.
[[nodiscard]] std::string repro_command(const CaseSpec& spec);

[[nodiscard]] StreamGraph build_topology(const CaseSpec& spec);
[[nodiscard]] std::vector<std::shared_ptr<runtime::Kernel>> build_kernels(
    const StreamGraph& g, const CaseSpec& spec);

// Runs the spec on one backend, honouring spec.feed. When `pool` is null
// the Pooled backend uses a private 2-worker pool; spec.sched != Lifo
// replaces `pool` with a private adversarially configured pool regardless.
// mode != None runs with compiled intervals.
[[nodiscard]] exec::RunReport run_backend(const StreamGraph& g,
                                          const CaseSpec& spec,
                                          exec::Backend backend,
                                          runtime::PoolExecutor* pool);

// The differential check: batch-fed simulator reference, then every
// backend (all three in Port mode -- the port-fed sim included -- else
// threaded and pooled) must match verdict, per-edge {data, dummies}, fires
// and sink_data -- and every backend must emit a state_dump exactly when
// deadlocked. Returns nullopt on agreement, else a mismatch description
// ending in the repro command. `reference_deadlocked` (optional) reports
// the reference verdict, so sweeps can tally without re-running the
// simulator.
[[nodiscard]] std::optional<std::string> run_differential(
    const CaseSpec& spec, runtime::PoolExecutor* pool,
    bool* reference_deadlocked = nullptr);

// The multi-tenant differential (qos): spec.tenants concurrent port-fed
// copies of the case on the caller's shared pool (fair DRR injector),
// weights 1..N, avoidance-armed copies additionally throttled by a
// per-tenant credit window -- and every copy's verdict, per-edge traffic,
// firing counts and sink deliveries must be bit-identical to the solo
// batch-fed simulator reference. This is "weighting and backpressure
// reorder execution, never change semantics" under real concurrency.
// Requires a non-null shared pool. Returns nullopt on agreement.
[[nodiscard]] std::optional<std::string> run_multitenant_differential(
    const CaseSpec& spec, runtime::PoolExecutor* pool);

// Draws a random but replayable CaseSpec: all topologies, both dummy modes
// plus avoidance-off, batch in {1, 7, 64} (1 when mode == None), batch- or
// port-fed with a random chunking bound.
[[nodiscard]] CaseSpec random_case(Prng& rng);

// The crash-recovery differential (ckpt): run the spec port-fed on
// `backend`, crash it at a random barrier -- push a crash_seed-chosen
// prefix, take an asynchronous snapshot, then destroy the stream and its
// session, keeping only the snapshot bytes and what the client had already
// polled -- restore into a fresh session, replay every port from its
// PortCut::next_seq, and finish. The delivered output set (client-side
// dedup by seq across the crash, the exactly-once contract) and the final
// report must be bit-identical to an uninterrupted run of the same spec.
// The snapshot round-trips through serialize/deserialize on the way, so
// the wire format is under the same differential. Requires spec.mode !=
// None: only avoidance-armed streams are wedge-free, and a wedged stream's
// barrier never completes (by design). Returns nullopt on agreement.
[[nodiscard]] std::optional<std::string> run_crash_differential(
    const CaseSpec& spec, exec::Backend backend, std::uint64_t crash_seed,
    runtime::PoolExecutor* pool);

struct SweepResult {
  int cases_run = 0;
  int deadlocks = 0;  // cases whose reference verdict was deadlock
  std::optional<std::string> failure;
};

// Runs random cases derived from `sweep_seed` until `seconds` elapse or
// `max_cases` have run; stops at the first mismatch. `forced_feed` pins
// every case to one feed mode (the ci.sh --stress port-mode sweep);
// `forced_sched` pins the pooled backend's scheduling regime (the ci.sh
// --stress perturbation sweep draws per-case regimes when unset).
[[nodiscard]] SweepResult sweep_random_cases(
    std::uint64_t sweep_seed, double seconds, int max_cases,
    runtime::PoolExecutor* pool,
    std::optional<FeedMode> forced_feed = std::nullopt,
    std::optional<Sched> forced_sched = std::nullopt);

// Randomized multi-tenant sweep: random cases pinned to 2-3 tenants and run
// through run_multitenant_differential on the shared pool. Stops at the
// first mismatch (the failure line carries tenants=N, so the ordinary
// SDAF_HARNESS_REPRO replay routes back through the multi-tenant check).
[[nodiscard]] SweepResult sweep_multitenant_cases(std::uint64_t sweep_seed,
                                                  double seconds,
                                                  int max_cases,
                                                  runtime::PoolExecutor* pool);

// Randomized kill/restore sweep: random avoidance-armed cases (mode None is
// re-drawn to Propagation), each crashed at a random barrier on a random
// backend and differentially restored via run_crash_differential. Stops at
// the first mismatch; the failure string carries the case line plus the
// crash=<seed> backend=<name> tokens the SDAF_CRASH_REPRO env replays
// (tests/test_crash_recovery.cpp).
[[nodiscard]] SweepResult sweep_crash_cases(std::uint64_t sweep_seed,
                                            double seconds, int max_cases,
                                            runtime::PoolExecutor* pool);

}  // namespace sdaf::harness
