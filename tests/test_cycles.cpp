#include "src/graph/cycles.h"

#include <gtest/gtest.h>

#include <set>

#include "src/support/prng.h"
#include "src/workloads/random_ladder.h"
#include "src/workloads/random_sp.h"
#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

std::set<std::set<EdgeId>> canonical(const std::vector<UCycle>& cycles) {
  std::set<std::set<EdgeId>> out;
  for (const auto& c : cycles) {
    std::set<EdgeId> ids;
    for (const auto& s : c) ids.insert(s.edge);
    EXPECT_TRUE(out.insert(ids).second) << "duplicate cycle enumerated";
  }
  return out;
}

TEST(Cycles, TriangleHasOne) {
  const auto e = enumerate_undirected_cycles(workloads::fig2_triangle());
  EXPECT_FALSE(e.truncated);
  ASSERT_EQ(e.cycles.size(), 1u);
  EXPECT_EQ(e.cycles[0].size(), 3u);
}

TEST(Cycles, Fig3HasOne) {
  const auto e = enumerate_undirected_cycles(workloads::fig3_cycle());
  ASSERT_EQ(e.cycles.size(), 1u);
  EXPECT_EQ(e.cycles[0].size(), 6u);
}

TEST(Cycles, Fig4LeftHasThree) {
  const auto e = enumerate_undirected_cycles(workloads::fig4_left());
  EXPECT_EQ(canonical(e.cycles).size(), 3u);
}

TEST(Cycles, ParallelEdgesFormTwoCycles) {
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_edge(a, b, 1);
  g.add_edge(a, b, 2);
  g.add_edge(a, b, 3);
  const auto e = enumerate_undirected_cycles(g);
  // 3 parallel edges: C(3,2) = 3 two-edge cycles.
  EXPECT_EQ(canonical(e.cycles).size(), 3u);
  for (const auto& c : e.cycles) EXPECT_EQ(c.size(), 2u);
}

TEST(Cycles, PipelineHasNone) {
  const auto e = enumerate_undirected_cycles(workloads::pipeline(5));
  EXPECT_TRUE(e.cycles.empty());
}

TEST(Cycles, TruncationReported) {
  const auto e = enumerate_undirected_cycles(workloads::fig4_butterfly(), 2);
  EXPECT_TRUE(e.truncated);
  EXPECT_EQ(e.cycles.size(), 2u);
}

TEST(Cycles, NodeChainClosesProperly) {
  const auto e = enumerate_undirected_cycles(workloads::fig2_triangle());
  const auto nodes = cycle_nodes(workloads::fig2_triangle(), e.cycles[0]);
  EXPECT_EQ(nodes.size(), 3u);
  const std::set<NodeId> unique(nodes.begin(), nodes.end());
  EXPECT_EQ(unique.size(), 3u);
}

TEST(DirectedRuns, TriangleSplitsIntoTwoRuns) {
  const StreamGraph g = workloads::fig2_triangle(2, 3, 5);
  const auto e = enumerate_undirected_cycles(g);
  const auto runs = directed_runs(g, e.cycles[0]);
  ASSERT_EQ(runs.size(), 2u);
  // Both runs sourced at A (node 0), sunk at C (node 2).
  for (const auto& r : runs) {
    EXPECT_EQ(r.source, 0u);
    EXPECT_EQ(r.sink, 2u);
  }
  std::set<std::int64_t> lengths{runs[0].buffer_length,
                                 runs[1].buffer_length};
  EXPECT_EQ(lengths, (std::set<std::int64_t>{5, 5}));  // 2+3 and 5
  std::set<std::int64_t> hops{runs[0].hops(), runs[1].hops()};
  EXPECT_EQ(hops, (std::set<std::int64_t>{1, 2}));
}

TEST(DirectedRuns, RunEdgesAreDirectedPaths) {
  Prng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = workloads::random_two_terminal_dag(rng, {});
    const auto e = enumerate_undirected_cycles(g, 1u << 14);
    if (e.truncated) continue;
    for (const auto& cycle : e.cycles) {
      for (const auto& run : directed_runs(g, cycle)) {
        NodeId cur = run.source;
        std::int64_t len = 0;
        for (const EdgeId id : run.edges) {
          EXPECT_EQ(g.edge(id).from, cur);
          cur = g.edge(id).to;
          len += g.edge(id).buffer;
        }
        EXPECT_EQ(cur, run.sink);
        EXPECT_EQ(len, run.buffer_length);
      }
    }
  }
}

TEST(CycleSourcesSinks, ButterflyHasDoubleSourceCycle) {
  const StreamGraph g = workloads::fig4_butterfly();
  const auto e = enumerate_undirected_cycles(g);
  bool found_multi = false;
  for (const auto& c : e.cycles)
    if (cycle_sources(g, c).size() == 2) found_multi = true;
  EXPECT_TRUE(found_multi);  // the a-A-b-B cycle
}

TEST(Cs4Oracle, KnownGraphs) {
  EXPECT_TRUE(is_cs4_by_enumeration(workloads::fig2_triangle()));
  EXPECT_TRUE(is_cs4_by_enumeration(workloads::fig3_cycle()));
  EXPECT_TRUE(is_cs4_by_enumeration(workloads::fig4_left()));
  EXPECT_FALSE(is_cs4_by_enumeration(workloads::fig4_butterfly()));
  EXPECT_TRUE(is_cs4_by_enumeration(workloads::butterfly_rewrite()));
  EXPECT_TRUE(is_cs4_by_enumeration(workloads::fig5_ladder()));
}

TEST(Cs4Oracle, SpDagsAreCs4) {
  // Lemma III.4: every SP-DAG is CS4.
  Prng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    workloads::RandomSpOptions opt;
    opt.target_edges = 12;
    const auto built = workloads::random_sp(rng, opt);
    EXPECT_TRUE(is_cs4_by_enumeration(built.graph));
  }
}

TEST(Cs4Oracle, RandomLaddersAreCs4) {
  // Corollary V.5: every SP-ladder is CS4.
  Prng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    workloads::RandomLadderOptions opt;
    opt.rungs = 1 + static_cast<std::size_t>(trial % 4);
    const auto g = workloads::random_ladder(rng, opt);
    EXPECT_TRUE(is_cs4_by_enumeration(g));
  }
}

}  // namespace
}  // namespace sdaf
