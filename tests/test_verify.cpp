#include "src/core/verify.h"

#include <gtest/gtest.h>

#include "src/support/prng.h"
#include "src/workloads/random_ladder.h"
#include "src/workloads/random_sp.h"
#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

using core::Algorithm;

TEST(Verify, CompiledIntervalsAlwaysPass) {
  for (const StreamGraph& g :
       {workloads::fig2_triangle(), workloads::fig3_cycle(),
        workloads::fig4_left(), workloads::fig5_ladder(),
        workloads::butterfly_rewrite()}) {
    for (const auto algo :
         {Algorithm::Propagation, Algorithm::NonPropagation}) {
      core::CompileOptions opt;
      opt.algorithm = algo;
      const auto r = core::compile(g, opt);
      ASSERT_TRUE(r.ok);
      const auto v = core::verify_intervals(g, r.intervals, algo);
      EXPECT_TRUE(v.ok) << "violations: " << v.violations.size();
    }
  }
}

TEST(Verify, LoosenedIntervalFlagged) {
  const StreamGraph g = workloads::fig3_cycle();
  auto r = core::compile(g);
  ASSERT_TRUE(r.ok);
  IntervalMap tampered = r.intervals;
  tampered.set(0, Rational(7));  // exact requirement is 6
  const auto v = core::verify_intervals(g, tampered, Algorithm::Propagation);
  ASSERT_FALSE(v.ok);
  ASSERT_EQ(v.violations.size(), 1u);
  EXPECT_EQ(v.violations[0].edge, 0u);
  EXPECT_EQ(v.violations[0].required, Rational(6));
  EXPECT_EQ(v.violations[0].provided, Rational(7));
}

TEST(Verify, InfiniteOnConstrainedEdgeFlagged) {
  const StreamGraph g = workloads::fig2_triangle();
  IntervalMap silent(g.edge_count());  // all infinite
  const auto v = core::verify_intervals(g, silent, Algorithm::Propagation);
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.violations.size(), 2u);  // both of A's out-edges
}

TEST(Verify, TighterThanRequiredIsFine) {
  const StreamGraph g = workloads::fig3_cycle();
  IntervalMap eager(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) eager.set(e, Rational(1));
  EXPECT_TRUE(
      core::verify_intervals(g, eager, Algorithm::Propagation).ok);
  EXPECT_TRUE(
      core::verify_intervals(g, eager, Algorithm::NonPropagation).ok);
}

TEST(Verify, NonPropStricterThanProp) {
  // Propagation intervals on interior edges are infinite and must fail a
  // Non-Propagation audit (which requires every cycle edge scheduled).
  const StreamGraph g = workloads::fig3_cycle();
  const auto prop = core::compile(g);
  const auto v = core::verify_intervals(g, prop.intervals,
                                        Algorithm::NonPropagation);
  EXPECT_FALSE(v.ok);
}

class VerifyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VerifyProperty, CompileThenVerifyRoundTrip) {
  Prng rng(GetParam() * 67 + 5);
  workloads::RandomCs4Options opt;
  opt.components = 1 + GetParam() % 3;
  opt.ladder.rungs = 1 + GetParam() % 2;
  const auto g = workloads::random_cs4_chain(rng, opt);
  for (const auto algo :
       {Algorithm::Propagation, Algorithm::NonPropagation}) {
    core::CompileOptions copt;
    copt.algorithm = algo;
    const auto r = core::compile(g, copt);
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(core::verify_intervals(g, r.intervals, algo).ok);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifyProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace sdaf
