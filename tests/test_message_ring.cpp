// Unit tests for the coalescing ring (shared by every backend's channels)
// and for Value's inline small-object storage.
#include "src/runtime/message_ring.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sdaf::runtime {
namespace {

TEST(Value, InlineSmallValuesRoundTrip) {
  const Value a(std::int64_t{-7});
  EXPECT_TRUE(a.has_value());
  EXPECT_EQ(a.as<std::int64_t>(), -7);
  const Value b(3.5);
  EXPECT_EQ(b.as<double>(), 3.5);
  struct Pair {
    std::uint64_t x, y;
  };
  const Value c(Pair{1, 2});
  EXPECT_EQ(c.as<Pair>().y, 2u);
}

TEST(Value, HeapFallbackForLargeOrNonTrivialTypes) {
  const Value v(std::string("a long enough string to defeat any SSO here"));
  EXPECT_EQ(v.as<std::string>().substr(0, 6), "a long");
  const Value w(std::vector<int>{1, 2, 3});
  Value copy = w;  // deep copy
  EXPECT_EQ(copy.as<std::vector<int>>().size(), 3u);
  Value moved = std::move(copy);  // steals the heap pointer
  EXPECT_EQ(moved.as<std::vector<int>>()[2], 3);
  EXPECT_FALSE(copy.has_value());  // NOLINT(bugprone-use-after-move)
}

TEST(Value, TypeMismatchThrows) {
  const Value v(std::int64_t{1});
  EXPECT_THROW((void)v.as<double>(), std::bad_cast);
  const Value empty;
  EXPECT_THROW((void)empty.as<std::int64_t>(), std::bad_cast);
}

TEST(Value, MoveLeavesSourceEmpty) {
  Value v(std::int64_t{9});
  Value w = std::move(v);
  EXPECT_FALSE(v.has_value());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(w.as<std::int64_t>(), 9);
}

TEST(MessageRing, PushPopRoundTripMixedKinds) {
  MessageRing ring(4);
  ring.push(Message::data(0, Value(std::int64_t{5})));
  ring.push(Message::dummy(1));
  ring.push(Message::eos());
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.head().kind, MessageKind::Data);
  const Message d = ring.pop_head();
  EXPECT_EQ(d.payload.as<std::int64_t>(), 5);
  EXPECT_EQ(ring.head().kind, MessageKind::Dummy);
  ring.pop();
  EXPECT_EQ(ring.head().kind, MessageKind::Eos);
  ring.pop();
  EXPECT_TRUE(ring.empty());
}

TEST(MessageRing, CoalescesConsecutiveDummies) {
  MessageRing ring(8);
  for (std::uint64_t s = 3; s < 8; ++s) ring.push(Message::dummy(s));
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.head().run, 5u);
  EXPECT_EQ(ring.pop_dummies(5), 5u);
  EXPECT_TRUE(ring.empty());
}

TEST(MessageRing, RunSplitAcrossGapsAndData) {
  MessageRing ring(8);
  ring.push(Message::dummy(0));
  ring.push(Message::dummy(2));  // gap
  ring.push(Message::data(3, Value(1)));
  ring.push(Message::dummy(4));
  EXPECT_EQ(ring.head().run, 1u);
  EXPECT_EQ(ring.pop_dummies(8), 1u);  // never crosses a segment
  EXPECT_EQ(ring.head().seq, 2u);
  EXPECT_EQ(ring.pop_dummies(8), 1u);
  EXPECT_EQ(ring.head().kind, MessageKind::Data);
  EXPECT_EQ(ring.pop_dummies(8), 0u);  // head is not a dummy
}

TEST(MessageRing, BatchPushRespectsCapacity) {
  MessageRing ring(4);
  EXPECT_EQ(ring.push_dummies(0, 10), 4u);
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.push_dummies(4, 1), 0u);
  EXPECT_EQ(ring.pop_dummies(3), 3u);
  EXPECT_EQ(ring.push_dummies(4, 10), 3u);  // extends the surviving run
  EXPECT_EQ(ring.head().seq, 3u);
  EXPECT_EQ(ring.head().run, 4u);
}

TEST(MessageRing, WrapAroundReusesSegments) {
  // Capacity-3 ring cycled many times: the segment ring wraps cleanly and
  // never allocates; interleave data and runs to exercise both segment
  // shapes.
  MessageRing ring(3);
  std::uint64_t seq = 0;
  for (int round = 0; round < 50; ++round) {
    ring.push(Message::data(seq, Value(static_cast<std::int64_t>(seq))));
    ++seq;
    const std::size_t accepted = ring.push_dummies(seq, 2);
    EXPECT_EQ(accepted, 2u);
    seq += 2;
    const Message d = ring.pop_head();
    EXPECT_EQ(d.kind, MessageKind::Data);
    EXPECT_EQ(static_cast<std::uint64_t>(d.payload.as<std::int64_t>()),
              d.seq);
    EXPECT_EQ(ring.pop_dummies(2), 2u);
    EXPECT_TRUE(ring.empty());
  }
}

TEST(MessageRing, TailMessageReportsEndOfRun) {
  MessageRing ring(6);
  ring.push(Message::data(0, Value(1)));
  EXPECT_EQ(ring.push_dummies(1, 3), 3u);
  EXPECT_EQ(ring.tail_message().seq, 3u);  // last dummy of the run
  EXPECT_EQ(ring.head_message().seq, 0u);
}

TEST(MessageRing, MarkerIsOccupancyNeutral) {
  // A snapshot marker must fit into a *logically full* ring (it rides the
  // extra physical segment) and must never perturb the certified occupancy
  // the deadlock certification reasons about.
  MessageRing ring(2);
  ring.push(Message::data(0, Value(std::int64_t{10})));
  ring.push(Message::data(1, Value(std::int64_t{11})));
  EXPECT_TRUE(ring.full());
  EXPECT_TRUE(ring.push_marker(2));
  EXPECT_EQ(ring.size(), 2u);  // marker excluded from logical occupancy
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.free_space(), 0u);
  ring.pop();
  ring.pop();
  // Logically empty, but the in-flight marker is still pending work.
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_FALSE(ring.empty());
  EXPECT_EQ(ring.head().kind, MessageKind::Marker);
  EXPECT_EQ(ring.head().seq, 2u);
  ring.pop();
  EXPECT_TRUE(ring.empty());
}

TEST(MessageRing, MarkerTerminatesDummyRunAndNeverCoalesces) {
  MessageRing ring(8);
  EXPECT_EQ(ring.push_dummies(0, 3), 3u);
  EXPECT_TRUE(ring.push_marker(3));
  ring.push(Message::dummy(3));  // consecutive seq, but behind the barrier
  EXPECT_EQ(ring.size(), 4u);    // 3 + 1 dummies; marker excluded
  EXPECT_EQ(ring.head().run, 3u);
  EXPECT_EQ(ring.pop_dummies(8), 3u);  // stops at the marker
  EXPECT_EQ(ring.head().kind, MessageKind::Marker);
  ring.pop();
  EXPECT_EQ(ring.head().kind, MessageKind::Dummy);
  EXPECT_EQ(ring.head().run, 1u);  // the post-barrier run did not coalesce
  ring.pop();
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace sdaf::runtime
