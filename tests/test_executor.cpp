#include "src/runtime/executor.h"

#include <gtest/gtest.h>

#include "src/core/compile.h"
#include "src/workloads/filters.h"
#include "src/workloads/topologies.h"

namespace sdaf::runtime {
namespace {

// Kernels for the Fig. 2 triangle: A passes everything to B (slot 0) and
// filters the direct A->C channel (slot 1) for `prefix` sequence numbers.
std::vector<std::shared_ptr<Kernel>> triangle_kernels(std::uint64_t prefix) {
  std::vector<std::shared_ptr<Kernel>> kernels;
  kernels.push_back(std::make_shared<RelayKernel>(
      workloads::adversarial_prefix_filter(1, prefix)));
  kernels.push_back(pass_through_kernel());  // B
  kernels.push_back(pass_through_kernel());  // C (sink)
  return kernels;
}

TEST(Executor, PipelineDeliversEverything) {
  const StreamGraph g = workloads::pipeline(4, 2);
  Executor ex(g, workloads::passthrough_kernels(g));
  ExecutorOptions opt;
  opt.mode = DummyMode::None;
  opt.num_inputs = 100;
  const auto r = ex.run(opt);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.deadlocked);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(r.edges[e].data, 100u);
    EXPECT_EQ(r.edges[e].dummies, 0u);
  }
  EXPECT_EQ(r.sink_data.back(), 100u);
}

TEST(Executor, SplitJoinAligned) {
  const StreamGraph g = workloads::fig1_splitjoin(4);
  Executor ex(g, workloads::passthrough_kernels(g));
  ExecutorOptions opt;
  opt.mode = DummyMode::None;
  opt.num_inputs = 50;
  const auto r = ex.run(opt);
  EXPECT_TRUE(r.completed);
  // D consumed both branches at every seq.
  EXPECT_EQ(r.sink_data[3], 100u);
  EXPECT_EQ(r.fires[3], 50u);
}

TEST(Executor, Fig2DeadlocksWithoutDummies) {
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  Executor ex(g, triangle_kernels(/*prefix=*/100));
  ExecutorOptions opt;
  opt.mode = DummyMode::None;
  opt.num_inputs = 100;
  const auto r = ex.run(opt);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_FALSE(r.completed);
}

TEST(Executor, Fig2SafeWithPropagationIntervals) {
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  const auto compiled = core::compile(g);
  ASSERT_TRUE(compiled.ok);
  Executor ex(g, triangle_kernels(/*prefix=*/100));
  ExecutorOptions opt;
  opt.mode = DummyMode::Propagation;
  opt.intervals = compiled.integer_intervals(core::Rounding::Floor);
  opt.forward_on_filter = compiled.forward_on_filter();
  opt.num_inputs = 100;
  const auto r = ex.run(opt);
  EXPECT_TRUE(r.completed) << "deadlocked despite computed intervals";
  EXPECT_GT(r.edges[2].dummies, 0u);  // A->C carried dummies
  EXPECT_EQ(r.sink_data[2], 100u);    // C got all of B's relayed data
}

TEST(Executor, Fig2SafeWithNonPropagationIntervals) {
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  core::CompileOptions copt;
  copt.algorithm = core::Algorithm::NonPropagation;
  const auto compiled = core::compile(g, copt);
  ASSERT_TRUE(compiled.ok);
  Executor ex(g, triangle_kernels(/*prefix=*/100));
  ExecutorOptions opt;
  opt.mode = DummyMode::NonPropagation;
  opt.intervals = compiled.integer_intervals(core::Rounding::Floor);
  opt.num_inputs = 100;
  const auto r = ex.run(opt);
  EXPECT_TRUE(r.completed);
}

TEST(Executor, FilteringWithoutCyclesNeedsNoDummies) {
  // A pure pipeline cannot deadlock no matter how aggressively it filters.
  const StreamGraph g = workloads::pipeline(5, 1);
  std::vector<std::shared_ptr<Kernel>> kernels;
  for (NodeId n = 0; n < g.node_count(); ++n)
    kernels.push_back(std::make_shared<RelayKernel>(
        workloads::bernoulli_filter(0.5, 1234 + n)));
  Executor ex(g, kernels);
  ExecutorOptions opt;
  opt.mode = DummyMode::None;
  opt.num_inputs = 200;
  const auto r = ex.run(opt);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.total_dummies(), 0u);
}

TEST(Executor, DummiesArePropagatedDownstream) {
  // Pipeline after a filtering split: dummies injected on the split's edge
  // must be forwarded by interior nodes in Propagation mode.
  const StreamGraph g = [&] {
    StreamGraph gg;
    const NodeId a = gg.add_node("A");
    const NodeId b = gg.add_node("B");
    const NodeId m = gg.add_node("M");
    const NodeId c = gg.add_node("C");
    gg.add_edge(a, b, 2);   // 0
    gg.add_edge(b, c, 2);   // 1
    gg.add_edge(a, m, 2);   // 2: filtered side, with interior hop M
    gg.add_edge(m, c, 2);   // 3
    return gg;
  }();
  const auto compiled = core::compile(g);
  ASSERT_TRUE(compiled.ok);
  std::vector<std::shared_ptr<Kernel>> kernels;
  kernels.push_back(std::make_shared<RelayKernel>(
      workloads::adversarial_prefix_filter(1, 1000)));
  kernels.push_back(pass_through_kernel());
  kernels.push_back(pass_through_kernel());
  kernels.push_back(pass_through_kernel());
  Executor ex(g, kernels);
  ExecutorOptions opt;
  opt.mode = DummyMode::Propagation;
  opt.intervals = compiled.integer_intervals(core::Rounding::Floor);
  opt.forward_on_filter = compiled.forward_on_filter();
  opt.num_inputs = 64;
  const auto r = ex.run(opt);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.edges[2].dummies, 0u);  // originated at A
  EXPECT_GT(r.edges[3].dummies, 0u);  // propagated through M
}

// The minimal counterexample behind the continuation-edge rule (see
// EXPERIMENTS.md finding 2): u feeds a (buffer 5) and b directly
// (buffer 1); a feeds b (buffer 5). The only branch node is u and the
// paper's intervals are [u->a] = 1, [u->b] = 10, [a->b] = infinite. When
// `a` filters everything toward b, u's data traffic on u->a satisfies
// [u->a] without ever producing knowledge for b, u->b fills (capacity 1),
// u blocks, and the system wedges -- unless a converts its filtered data
// to dummies on the continuation edge a->b.
TEST(Executor, InteriorFilteringCounterexample) {
  StreamGraph g;
  const NodeId u = g.add_node("u");
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.add_edge(u, a, 5);  // 0
  g.add_edge(a, b, 5);  // 1: the continuation edge
  g.add_edge(u, b, 1);  // 2
  const auto compiled = core::compile(g);
  ASSERT_TRUE(compiled.ok);
  EXPECT_EQ(compiled.intervals[0], Rational(1));
  EXPECT_EQ(compiled.intervals[2], Rational(10));
  EXPECT_TRUE(compiled.intervals[1].is_infinite());
  ASSERT_EQ(compiled.forward_on_filter(),
            (std::vector<std::uint8_t>{0, 1, 0}));

  const auto make_kernels = [] {
    std::vector<std::shared_ptr<Kernel>> kernels;
    kernels.push_back(pass_through_kernel());  // u passes on both channels
    kernels.push_back(std::make_shared<RelayKernel>(
        [](std::uint64_t, std::size_t) { return false; }));  // a drops all
    kernels.push_back(pass_through_kernel());  // b (sink)
    return kernels;
  };

  // Without the continuation rule: deadlock.
  {
    Executor ex(g, make_kernels());
    ExecutorOptions opt;
    opt.mode = DummyMode::Propagation;
    opt.intervals = compiled.integer_intervals(core::Rounding::Floor);
    opt.num_inputs = 100;  // forward_on_filter deliberately left empty
    EXPECT_TRUE(ex.run(opt).deadlocked);
  }
  // With it: completes.
  {
    Executor ex(g, make_kernels());
    ExecutorOptions opt;
    opt.mode = DummyMode::Propagation;
    opt.intervals = compiled.integer_intervals(core::Rounding::Floor);
    opt.forward_on_filter = compiled.forward_on_filter();
    opt.num_inputs = 100;
    const auto r = ex.run(opt);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.edges[1].dummies, 0u);  // a converted filtered data
  }
}

TEST(Executor, ValuesFlowThroughPayloads) {
  // Source tags values; sink checks them via a lambda kernel.
  StreamGraph g;
  const NodeId src = g.add_node();
  const NodeId dst = g.add_node();
  g.add_edge(src, dst, 4);
  std::vector<std::shared_ptr<Kernel>> kernels;
  kernels.push_back(std::make_shared<LambdaKernel>(
      [](std::uint64_t seq, const auto&, Emitter& out) {
        out.emit(0, Value(static_cast<std::int64_t>(seq * 3)));
      }));
  std::atomic<std::int64_t> sum{0};
  kernels.push_back(std::make_shared<LambdaKernel>(
      [&sum](std::uint64_t, const auto& inputs, Emitter&) {
        sum += inputs[0]->template as<std::int64_t>();
      }));
  Executor ex(g, kernels);
  ExecutorOptions opt;
  opt.mode = DummyMode::None;
  opt.num_inputs = 10;
  const auto r = ex.run(opt);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(sum.load(), 3 * 45);
}

TEST(Executor, RepeatedRunsAreIndependent) {
  const StreamGraph g = workloads::fig1_splitjoin(2);
  Executor ex(g, workloads::passthrough_kernels(g));
  ExecutorOptions opt;
  opt.mode = DummyMode::None;
  opt.num_inputs = 20;
  const auto r1 = ex.run(opt);
  const auto r2 = ex.run(opt);
  EXPECT_TRUE(r1.completed);
  EXPECT_TRUE(r2.completed);
  EXPECT_EQ(r1.total_data(), r2.total_data());
}

}  // namespace
}  // namespace sdaf::runtime
