#include "src/spdag/sp_tree.h"

#include <gtest/gtest.h>

#include "src/graph/stream_graph.h"

namespace sdaf {
namespace {

struct Fixture {
  StreamGraph g;
  SpTree tree;
  NodeId x, m, y;
  SpTree::Index leaf_xm, leaf_my, leaf_xy, series, root;

  Fixture() {
    x = g.add_node("x");
    m = g.add_node("m");
    y = g.add_node("y");
    const EdgeId e_xm = g.add_edge(x, m, 2);
    const EdgeId e_my = g.add_edge(m, y, 3);
    const EdgeId e_xy = g.add_edge(x, y, 4);
    leaf_xm = tree.add_leaf(e_xm, x, m);
    leaf_my = tree.add_leaf(e_my, m, y);
    leaf_xy = tree.add_leaf(e_xy, x, y);
    series = tree.add_series(leaf_xm, leaf_my);
    root = tree.add_parallel(series, leaf_xy);
    tree.set_root(root);
  }
};

TEST(SpTree, TerminalsCompose) {
  Fixture f;
  EXPECT_EQ(f.tree.node(f.series).source, f.x);
  EXPECT_EQ(f.tree.node(f.series).sink, f.y);
  EXPECT_EQ(f.tree.node(f.root).source, f.x);
  EXPECT_EQ(f.tree.node(f.root).sink, f.y);
  EXPECT_EQ(f.tree.size(), 5u);
}

TEST(SpTree, ParentsArray) {
  Fixture f;
  const auto parents = f.tree.parents();
  EXPECT_EQ(parents[f.leaf_xm], f.series);
  EXPECT_EQ(parents[f.leaf_my], f.series);
  EXPECT_EQ(parents[f.series], f.root);
  EXPECT_EQ(parents[f.leaf_xy], f.root);
  EXPECT_EQ(parents[f.root], -1);
}

TEST(SpTree, LeavesUnder) {
  Fixture f;
  const auto all = f.tree.leaves_under(f.root);
  EXPECT_EQ(all.size(), 3u);
  const auto left = f.tree.leaves_under(f.series);
  EXPECT_EQ(left.size(), 2u);
  const auto single = f.tree.leaves_under(f.leaf_xy);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], f.leaf_xy);
}

TEST(SpTree, ConsistencyCheckPasses) {
  Fixture f;
  f.tree.check_consistency(f.g);  // must not abort
}

TEST(SpTreeDeathTest, SeriesRequiresSharedJunction) {
  Fixture f;
  EXPECT_DEATH((void)f.tree.add_series(f.leaf_xy, f.leaf_xm), "precondition");
}

TEST(SpTreeDeathTest, ParallelRequiresSharedTerminals) {
  Fixture f;
  EXPECT_DEATH((void)f.tree.add_parallel(f.leaf_xm, f.leaf_xy),
               "precondition");
}

TEST(SpTreeDeathTest, RootRequiredForAccess) {
  SpTree t;
  EXPECT_DEATH((void)t.root(), "precondition");
}

TEST(SpTreeDeathTest, ConsistencyCatchesMissingEdge) {
  Fixture f;
  StreamGraph bigger = f.g;
  const NodeId z = bigger.add_node();
  (void)bigger.add_edge(f.y, z, 1);  // edge not covered by the tree
  EXPECT_DEATH(f.tree.check_consistency(bigger), "invariant");
}

}  // namespace
}  // namespace sdaf
