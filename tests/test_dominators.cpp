#include "src/graph/dominators.h"

#include <gtest/gtest.h>

#include "src/support/prng.h"
#include "src/workloads/random_sp.h"
#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

TEST(Dominators, Pipeline) {
  const StreamGraph g = workloads::pipeline(4);
  const auto idom = immediate_dominators(g, 0);
  EXPECT_EQ(idom[0], 0u);
  EXPECT_EQ(idom[1], 0u);
  EXPECT_EQ(idom[2], 1u);
  EXPECT_EQ(idom[3], 2u);
}

TEST(Dominators, SplitJoinMergesAtSplit) {
  const StreamGraph g = workloads::fig1_splitjoin();
  const auto idom = immediate_dominators(g, 0);
  EXPECT_EQ(idom[1], 0u);  // B dominated by A only
  EXPECT_EQ(idom[2], 0u);  // C
  EXPECT_EQ(idom[3], 0u);  // D's branches merge: idom = A
}

TEST(Postdominators, SplitJoin) {
  const StreamGraph g = workloads::fig1_splitjoin();
  const auto ipdom = immediate_postdominators(g, 3);
  EXPECT_EQ(ipdom[0], 3u);  // A's branches remerge at D
  EXPECT_EQ(ipdom[1], 3u);
  EXPECT_EQ(ipdom[2], 3u);
}

TEST(Postdominators, Fig3) {
  const StreamGraph g = workloads::fig3_cycle();
  const auto ipdom = immediate_postdominators(g, 5);
  EXPECT_EQ(ipdom[0], 5u);  // a's postdominator is f
  EXPECT_EQ(ipdom[1], 4u);  // b -> e
  EXPECT_EQ(ipdom[4], 5u);  // e -> f
}

TEST(Dominates, TransitiveQueries) {
  const StreamGraph g = workloads::pipeline(5);
  const auto idom = immediate_dominators(g, 0);
  EXPECT_TRUE(dominates(idom, 0, 0, 4));
  EXPECT_TRUE(dominates(idom, 0, 2, 4));
  EXPECT_FALSE(dominates(idom, 0, 4, 2));
  EXPECT_TRUE(dominates(idom, 0, 3, 3));
}

// The observation in Section III: in an SP-DAG every node has an immediate
// postdominator (single-sink property), and dually a dominator.
TEST(Dominators, SpDagsAlwaysHaveBothTrees) {
  Prng rng(123);
  for (int trial = 0; trial < 25; ++trial) {
    workloads::RandomSpOptions opt;
    opt.target_edges = 20;
    const auto built = workloads::random_sp(rng, opt);
    const auto& g = built.graph;
    const auto idom = immediate_dominators(g, g.unique_source());
    const auto ipdom = immediate_postdominators(g, g.unique_sink());
    for (NodeId n = 0; n < g.node_count(); ++n) {
      EXPECT_NE(idom[n], kNoNode);
      EXPECT_NE(ipdom[n], kNoNode);
    }
  }
}

// Lemma III.1 (spot check on random SP-DAGs): a node Z with >= 2 out-edges
// dominates every node on any directed path from Z to its immediate
// postdominator W, other than W itself.
TEST(Dominators, LemmaIII1OnRandomSpDags) {
  Prng rng(321);
  for (int trial = 0; trial < 15; ++trial) {
    workloads::RandomSpOptions opt;
    opt.target_edges = 16;
    const auto built = workloads::random_sp(rng, opt);
    const auto& g = built.graph;
    const auto idom = immediate_dominators(g, g.unique_source());
    const auto ipdom = immediate_postdominators(g, g.unique_sink());
    for (NodeId z = 0; z < g.node_count(); ++z) {
      if (g.out_degree(z) < 2) continue;
      const NodeId w = ipdom[z];
      // BFS over nodes on paths z -> w: nodes reachable from z that reach w.
      // Every such node other than w must be dominated by z.
      std::vector<NodeId> stack{z};
      std::vector<bool> seen(g.node_count(), false);
      seen[z] = true;
      while (!stack.empty()) {
        const NodeId v = stack.back();
        stack.pop_back();
        if (v == w) continue;
        EXPECT_TRUE(dominates(idom, g.unique_source(), z, v))
            << "Z=" << z << " does not dominate " << v;
        for (const EdgeId e : g.out_edges(v)) {
          const NodeId nxt = g.edge(e).to;
          if (!seen[nxt]) {
            seen[nxt] = true;
            stack.push_back(nxt);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace sdaf
