// Checkpoint/restore over the wire: the Snapshot/Restore frame pair against
// a live daemon. The load-bearing claims: (1) a stream snapshotted over the
// wire, killed by dropping its connection, and restored -- on the same
// daemon or a freshly restarted one -- delivers the exact item set and
// verdict of an uninterrupted run (replay from the cut + dedup by seq =
// exactly-once); (2) a client that vanishes mid-stream cannot leak its
// stream: the server aborts the ports, reaps the session, and counts it;
// (3) connect() rides out a restarting daemon via bounded jittered retry.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/ckpt/snapshot.h"
#include "src/core/compile.h"
#include "src/exec/session.h"
#include "src/exec/stream.h"
#include "src/graph/io.h"
#include "src/net/client.h"
#include "src/net/frame.h"
#include "src/net/server.h"
#include "src/net/socket.h"
#include "src/net/workload.h"
#include "src/workloads/topologies.h"

namespace sdaf::net {
namespace {

using runtime::DummyMode;
using runtime::Value;

constexpr std::chrono::milliseconds kSnapTimeout{5000};

class NetSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override { start_server(); }

  void TearDown() override { stop_server(); }

  void start_server() {
    ServerOptions opt;
    opt.unix_path = "/tmp/sdaf_snap_" + std::to_string(::getpid()) + "_" +
                    ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name();
    opt.push_wait = std::chrono::milliseconds(100);
    server_ = std::make_unique<Server>(std::move(opt));
    ASSERT_TRUE(server_->start());
    thread_ = std::thread([this] { server_->run(); });
  }

  void stop_server() {
    if (!server_) return;
    server_->request_stop();
    thread_.join();
  }

  [[nodiscard]] Client connect() {
    auto c = Client::connect_unix(server_->unix_path());
    EXPECT_TRUE(c.has_value());
    return std::move(*c);
  }

  // Spins until the server has reaped every stream (teardown of a dropped
  // connection is asynchronous).
  void wait_streams_reaped() {
    for (int i = 0; i < 500; ++i) {
      if (server_->stats().streams_open == 0) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    FAIL() << "server never reaped its streams";
  }

  std::unique_ptr<Server> server_;
  std::thread thread_;
};

// Delivered items keyed by seq: re-delivery after a restore must carry the
// identical payload, and the union must be the uninterrupted set.
struct Delivered {
  std::map<std::uint64_t, std::int64_t> items;
  void add(const DeliverFrame& d) {
    for (const auto& item : d.items) {
      const std::int64_t v = item.value.as<std::int64_t>();
      const auto [it, inserted] = items.emplace(item.seq, v);
      if (!inserted) EXPECT_EQ(it->second, v) << "seq " << item.seq;
    }
  }
};

// Uninterrupted in-process reference through the server's own construction
// (net::make_kernels + the same StreamSpec mapping), Sim backend.
std::pair<std::map<std::uint64_t, std::int64_t>, exec::RunReport>
run_reference(const StreamGraph& g, const OpenFrame& spec,
              const std::vector<std::int64_t>& inputs) {
  exec::Session session(g, make_kernels(g, spec));
  exec::StreamSpec ss;
  ss.run.backend = static_cast<exec::Backend>(spec.backend);
  ss.run.mode = static_cast<DummyMode>(spec.mode);
  ss.run.batch = spec.batch;
  ss.run.pool_workers = 2;
  ss.feed_capacity = spec.feed_capacity;
  ss.egress_capacity = spec.egress_capacity;
  if (ss.run.mode != DummyMode::None) {
    core::CompileOptions copts;
    copts.algorithm = ss.run.mode == DummyMode::NonPropagation
                          ? core::Algorithm::NonPropagation
                          : core::Algorithm::Propagation;
    const auto compiled = core::compile(g, copts);
    EXPECT_TRUE(compiled.ok);
    ss.run.apply(compiled);
  }
  exec::Stream stream = session.open(ss);
  std::map<std::uint64_t, std::int64_t> out;
  for (const std::int64_t v : inputs) {
    EXPECT_TRUE(stream.input(0).push(Value(v)));
    while (auto item = stream.output(0).poll())
      out.emplace(item->seq, item->value.as<std::int64_t>());
  }
  stream.input(0).close();
  while (auto item = stream.output(0).next())
    out.emplace(item->seq, item->value.as<std::int64_t>());
  return {std::move(out), stream.finish()};
}

void expect_same_report(const exec::RunReport& expected,
                        const exec::RunReport& actual) {
  ASSERT_EQ(expected.deadlocked, actual.deadlocked);
  ASSERT_EQ(expected.completed, actual.completed);
  ASSERT_EQ(expected.sink_data, actual.sink_data);
  ASSERT_EQ(expected.fires, actual.fires);
  ASSERT_EQ(expected.edges.size(), actual.edges.size());
  for (std::size_t e = 0; e < expected.edges.size(); ++e) {
    EXPECT_EQ(expected.edges[e].data, actual.edges[e].data) << "edge " << e;
    EXPECT_EQ(expected.edges[e].dummies, actual.edges[e].dummies)
        << "edge " << e;
  }
}

OpenFrame relay_spec(const StreamGraph& g) {
  OpenFrame spec;
  spec.backend = 0;  // Sim: deterministic wire/reference differential
  spec.mode = 1;     // Propagation
  spec.kernel = KernelKind::Relay;
  spec.pass_rate = 0.55;
  spec.seed = 0xAB;
  spec.topology = to_text(g);
  return spec;
}

// The wire crash differential: push half, snapshot, kill the connection
// (the daemon aborts the orphaned stream), restore into a new stream on a
// fresh connection, replay from the cut -- outputs and verdict must match
// the uninterrupted run exactly.
TEST_F(NetSnapshotTest, SnapshotKillRestoreMatchesUninterruptedRun) {
  const StreamGraph g = workloads::splitjoin(3, 2, 3);
  std::vector<std::int64_t> inputs;
  for (std::int64_t i = 0; i < 100; ++i) inputs.push_back(i * 7);
  const auto [want, want_report] = run_reference(g, relay_spec(g), inputs);

  Delivered delivered;
  std::vector<std::uint8_t> bytes;
  {
    auto c1 = Client::connect_unix(server_->unix_path());
    ASSERT_TRUE(c1.has_value());
    ClientStream s1 = c1->open(1, relay_spec(g));
    EXPECT_EQ(s1.epoch(), 0u);
    for (std::size_t i = 0; i < 60; ++i) {
      EXPECT_EQ(s1.push(0, {Value(inputs[i])}), 1u);
      delivered.add(s1.poll(0, 128));
    }
    auto snap = s1.snapshot(kSnapTimeout);
    ASSERT_TRUE(snap.has_value());
    bytes = std::move(*snap);
    EXPECT_GE(server_->stats().snapshots_total, 1u);
    // Crash: the connection dies with the stream mid-flight. No close, no
    // finish -- the daemon must clean up on its own.
  }
  wait_streams_reaped();
  EXPECT_GE(server_->stats().sessions_aborted_total, 1u);

  // The snapshot is self-describing; the replay point is the port cut.
  const auto snap = ckpt::deserialize(bytes);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->epoch, 0u);
  ASSERT_EQ(snap->ports.size(), 1u);
  const std::uint64_t replay_from = snap->ports[0].next_seq;
  EXPECT_EQ(replay_from, 60u);

  Client c2 = connect();
  ClientStream s2 = c2.restore(2, relay_spec(g), bytes);
  EXPECT_EQ(s2.epoch(), 1u);
  EXPECT_GE(server_->stats().restores_total, 1u);
  for (std::size_t i = replay_from; i < inputs.size(); ++i) {
    EXPECT_EQ(s2.push(0, {Value(inputs[i])}), 1u);
    delivered.add(s2.poll(0, 128));
  }
  s2.close(0);
  for (;;) {
    const DeliverFrame d = s2.poll(0, 128);
    delivered.add(d);
    if (d.ended != 0) break;
  }
  const exec::RunReport report = s2.finish();

  expect_same_report(want_report, report);
  ASSERT_EQ(delivered.items.size(), want.size());
  for (const auto& [seq, value] : want) {
    const auto it = delivered.items.find(seq);
    ASSERT_NE(it, delivered.items.end()) << "missing seq " << seq;
    EXPECT_EQ(it->second, value) << "seq " << seq;
  }

  // Both the abort and the snapshot/restore surfaced on the stats page.
  const std::string page = c2.stats();
  EXPECT_NE(page.find("sdafd_snapshots_total"), std::string::npos);
  EXPECT_NE(page.find("sdafd_restores_total"), std::string::npos);
  EXPECT_NE(page.find("sdafd_sessions_aborted_total"), std::string::npos);
}

// Snapshots survive the daemon itself: cut on one daemon, kill it, boot a
// fresh one on the same socket, and restore there. The connect rides the
// restart window via the bounded retry (ENOENT / ECONNREFUSED while the
// new daemon is not yet bound).
TEST_F(NetSnapshotTest, SnapshotRestoresOnAFreshlyRestartedDaemon) {
  const StreamGraph g = workloads::pipeline(4, 3);
  std::vector<std::int64_t> inputs;
  for (std::int64_t i = 0; i < 80; ++i) inputs.push_back(i + 1);
  const auto [want, want_report] = run_reference(g, relay_spec(g), inputs);

  const std::string path = server_->unix_path();
  Delivered delivered;
  std::vector<std::uint8_t> bytes;
  {
    Client c1 = connect();
    ClientStream s1 = c1.open(1, relay_spec(g));
    for (std::size_t i = 0; i < 33; ++i) {
      EXPECT_EQ(s1.push(0, {Value(inputs[i])}), 1u);
      delivered.add(s1.poll(0, 128));
    }
    auto snap = s1.snapshot(kSnapTimeout);
    ASSERT_TRUE(snap.has_value());
    bytes = std::move(*snap);
  }

  // Daemon crash + restart: the old process is gone (compile cache and
  // all), a new one comes up on the same socket after a beat.
  stop_server();
  std::thread reboot([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    start_server();
  });
  ConnectOptions retry;
  retry.attempts = 50;
  retry.backoff = std::chrono::milliseconds(10);
  auto c2 = Client::connect_unix(path, retry);
  reboot.join();
  ASSERT_TRUE(c2.has_value());  // only reachable through the retry loop

  const auto snap = ckpt::deserialize(bytes);
  ASSERT_TRUE(snap.has_value());
  const std::uint64_t replay_from = snap->ports[0].next_seq;
  ClientStream s2 = c2->restore(1, relay_spec(g), bytes);
  EXPECT_EQ(s2.epoch(), 1u);
  for (std::size_t i = replay_from; i < inputs.size(); ++i) {
    EXPECT_EQ(s2.push(0, {Value(inputs[i])}), 1u);
    delivered.add(s2.poll(0, 128));
  }
  s2.close(0);
  for (;;) {
    const DeliverFrame d = s2.poll(0, 128);
    delivered.add(d);
    if (d.ended != 0) break;
  }
  expect_same_report(want_report, s2.finish());
  ASSERT_EQ(delivered.items.size(), want.size());
  for (const auto& [seq, value] : want)
    EXPECT_EQ(delivered.items.at(seq), value) << "seq " << seq;
}

// Satellite: a client that dies mid-push cannot wedge or leak the stream.
// The daemon closes the orphaned input ports (dynamic EOS), the stream
// completes or certifies, the session is reaped, and the abort is counted
// -- all while other connections keep flowing.
TEST_F(NetSnapshotTest, ClientKilledMidPushIsReapedAndCounted) {
  OpenFrame spec;
  spec.topology = "node a\nnode b\nedge a b 8\n";
  {
    auto doomed = Client::connect_unix(server_->unix_path());
    ASSERT_TRUE(doomed.has_value());
    ClientStream s = doomed->open(1, spec);
    for (std::int64_t i = 0; i < 20; ++i)
      EXPECT_EQ(s.push(0, {Value(i)}), 1u);
    // Connection dropped here: no close, no finish, undelivered output
    // still parked on the egress tap.
  }
  wait_streams_reaped();
  const ServiceStats stats = server_->stats();
  EXPECT_EQ(stats.streams_open, 0u);
  EXPECT_GE(stats.sessions_aborted_total, 1u);

  // The daemon is unharmed: a fresh stream runs end to end.
  Client client = connect();
  ClientStream s = client.open(1, spec);
  EXPECT_EQ(s.push(0, {Value(std::int64_t{42})}), 1u);
  s.close(0);
  EXPECT_TRUE(s.finish().completed);
  EXPECT_NE(client.stats().find("sdafd_sessions_aborted_total 1"),
            std::string::npos);
}

// Restore polices its spec: a snapshot cut under one mode cannot rehydrate
// a stream compiled under another (BadState over the wire), and malformed
// snapshot bytes are rejected outright (BadFrame). Every error except
// Draining is connection-fatal in this protocol, so each rejected attempt
// burns its own connection -- and the daemon shrugs it off.
TEST_F(NetSnapshotTest, RestoreRejectsMismatchAndGarbage) {
  const StreamGraph g = workloads::pipeline(3, 2);
  std::optional<std::vector<std::uint8_t>> bytes;
  {
    Client client = connect();
    ClientStream s1 = client.open(1, relay_spec(g));
    for (std::int64_t i = 0; i < 10; ++i)
      EXPECT_EQ(s1.push(0, {Value(i)}), 1u);
    bytes = s1.snapshot(kSnapTimeout);
    ASSERT_TRUE(bytes.has_value());
    s1.close(0);
    for (;;) {
      if (s1.poll(0, 128).ended != 0) break;
    }
    (void)s1.finish();
  }

  {
    Client client = connect();
    OpenFrame wrong_mode = relay_spec(g);
    wrong_mode.mode = 2;  // NonPropagation: different signature
    try {
      (void)client.restore(2, wrong_mode, *bytes);
      FAIL() << "mismatched restore was accepted";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.code(), ErrorCode::BadState);
    }
  }
  {
    Client client = connect();
    std::vector<std::uint8_t> garbage = *bytes;
    garbage[0] ^= 0xFF;  // version byte
    EXPECT_THROW((void)client.restore(3, relay_spec(g), garbage),
                 ProtocolError);
  }

  // The good snapshot still restores after the failed attempts.
  Client client = connect();
  ClientStream s2 = client.restore(4, relay_spec(g), *bytes);
  EXPECT_EQ(s2.epoch(), 1u);
  s2.close(0);
  for (;;) {
    if (s2.poll(0, 128).ended != 0) break;
  }
  (void)s2.finish();
}

// A wedged stream never completes its barrier -- SnapshotOk keeps coming
// back pending instead of stalling the event loop -- and the stream still
// certifies its deadlock afterwards.
TEST_F(NetSnapshotTest, WedgedStreamSnapshotStaysPendingOverWire) {
  OpenFrame spec;
  spec.backend = 2;  // Pooled: exact quiescence-based detection
  spec.mode = 0;     // avoidance off; the wedge is free to bite
  spec.kernel = KernelKind::Wedge;
  spec.wedge_prefix = 1000;
  spec.feed_capacity = 4;
  spec.topology = to_text(workloads::fig2_triangle());

  Client client = connect();
  ClientStream s = client.open(1, spec);
  for (int i = 0; i < 40; ++i) {
    const PushAckFrame ack = s.push_some(0, {Value()});
    if (ack.accepted == 0 || ack.ended != 0) break;
  }
  // Each poll is one cheap round trip; the daemon answers pending every
  // time and keeps serving (the timeout here bounds the test, the barrier
  // simply stays pending server-side).
  EXPECT_FALSE(s.snapshot(std::chrono::milliseconds(300)).has_value());
  EXPECT_FALSE(s.snapshot_poll().has_value());

  s.close(0);
  const exec::RunReport report = s.finish();
  EXPECT_TRUE(report.deadlocked);
  EXPECT_FALSE(report.state_dump.empty());
}

}  // namespace
}  // namespace sdaf::net
