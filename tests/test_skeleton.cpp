#include "src/cs4/skeleton.h"

#include <gtest/gtest.h>

#include "src/graph/topo.h"
#include "src/support/prng.h"
#include "src/workloads/random_ladder.h"
#include "src/workloads/random_sp.h"
#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

Skeleton skel_of(const StreamGraph& g) {
  return extract_skeleton(g, g.unique_source(), g.unique_sink());
}

TEST(Skeleton, SpGraphContractsToOneEdge) {
  const auto s = skel_of(workloads::fig3_cycle());
  EXPECT_TRUE(s.is_single_sp());
  EXPECT_EQ(s.graph.edge_count(), 1u);
  // Skeleton buffer = L of the whole graph = 6.
  EXPECT_EQ(s.graph.edge(0).buffer, 6);
}

TEST(Skeleton, Fig4LeftIsIrreducible) {
  const auto s = skel_of(workloads::fig4_left(2));
  EXPECT_EQ(s.edges.size(), 5u);
  EXPECT_EQ(s.graph.node_count(), 4u);
  for (EdgeId e = 0; e < s.graph.edge_count(); ++e)
    EXPECT_EQ(s.graph.edge(e).buffer, 2);
}

TEST(Skeleton, DecoratedLadderContractsDecorations) {
  // Fig 5 intuition: decorate a ladder's segments with SP fuzz; the
  // skeleton must still be the bare 8-super-edge ladder of fig5.
  StreamGraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId f = g.add_node("f");
  const NodeId j = g.add_node("j");
  const NodeId k = g.add_node("k");
  const NodeId m = g.add_node("m");
  auto decorated = [&](NodeId from, NodeId to) {
    // from -> mid -> to with a parallel shortcut mid pair: an SP component.
    const NodeId mid = g.add_node();
    g.add_edge(from, mid, 2);
    g.add_edge(mid, to, 3);
    g.add_edge(mid, to, 4);
  };
  decorated(a, b);
  decorated(b, f);
  decorated(f, m);
  decorated(a, j);
  decorated(j, k);
  decorated(k, m);
  decorated(b, j);
  decorated(f, k);
  const auto s = skel_of(g);
  EXPECT_EQ(s.edges.size(), 8u);
  // Each contracted component: L = 2 + min(3,4) = 5.
  for (EdgeId e = 0; e < s.graph.edge_count(); ++e)
    EXPECT_EQ(s.graph.edge(e).buffer, 5);
}

TEST(Skeleton, ChainKeepsBridges) {
  // ladder -> bridge -> ladder: skeleton has 5 + 1 + 5 super-edges.
  Prng rng(5);
  workloads::RandomCs4Options opt;
  opt.components = 3;
  opt.ladder_probability = 1.0;
  opt.ladder.rungs = 1;
  opt.ladder.left_interior = 1;
  opt.ladder.right_interior = 1;
  const auto g = workloads::random_cs4_chain(rng, opt);
  const auto s = skel_of(g);
  EXPECT_FALSE(s.is_single_sp());
  // All skeleton endpoints map back to original nodes.
  for (const auto& se : s.edges) {
    EXPECT_LT(se.from, g.node_count());
    EXPECT_LT(se.to, g.node_count());
    EXPECT_GE(se.tree, 0);
  }
}

TEST(Skeleton, MetricsMatchComponents) {
  Prng rng(17);
  workloads::RandomLadderOptions opt;
  opt.rungs = 2;
  opt.component_edges = 3;
  const auto g = workloads::random_ladder(rng, opt);
  const auto s = skel_of(g);
  // Every super-edge's skeleton buffer equals the component tree's L and
  // the component terminals match.
  for (std::size_t i = 0; i < s.edges.size(); ++i) {
    const auto& se = s.edges[i];
    EXPECT_EQ(s.graph.edge(static_cast<EdgeId>(i)).buffer,
              s.metrics.shortest_buffer[se.tree]);
    EXPECT_EQ(s.tree.node(se.tree).source, se.from);
    EXPECT_EQ(s.tree.node(se.tree).sink, se.to);
  }
  // Component trees partition the graph's edges.
  std::vector<bool> covered(g.edge_count(), false);
  for (const auto& se : s.edges)
    for (const auto li : s.tree.leaves_under(se.tree)) {
      const EdgeId e = s.tree.node(li).edge;
      EXPECT_FALSE(covered[e]);
      covered[e] = true;
    }
  for (EdgeId e = 0; e < g.edge_count(); ++e) EXPECT_TRUE(covered[e]);
}

TEST(Skeleton, SkeletonIsAcyclicDag) {
  Prng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = workloads::random_two_terminal_dag(rng, {});
    const auto s = skel_of(g);
    EXPECT_TRUE(topo_order(s.graph).has_value());
  }
}

}  // namespace
}  // namespace sdaf
