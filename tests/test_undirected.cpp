#include "src/graph/undirected.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/support/prng.h"
#include "src/workloads/random_ladder.h"
#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

TEST(UndirectedView, DegreesCountBothDirections) {
  const StreamGraph g = workloads::fig2_triangle();
  const UndirectedView u(g);
  EXPECT_EQ(u.degree(0), 2u);  // A: two out
  EXPECT_EQ(u.degree(1), 2u);  // B: one in one out
  EXPECT_EQ(u.degree(2), 2u);  // C: two in
}

TEST(UndirectedView, HalfEdgeOrientation) {
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const EdgeId e = g.add_edge(a, b, 1);
  const UndirectedView u(g);
  ASSERT_EQ(u.incident(a).size(), 1u);
  EXPECT_EQ(u.incident(a)[0].edge, e);
  EXPECT_TRUE(u.incident(a)[0].forward);
  EXPECT_EQ(u.incident(a)[0].other, b);
  EXPECT_FALSE(u.incident(b)[0].forward);
}

TEST(Articulation, PipelineInteriorNodesAreCuts) {
  const StreamGraph g = workloads::pipeline(5);
  const auto arts = articulation_points(g);
  EXPECT_EQ(arts, (std::vector<NodeId>{1, 2, 3}));
}

TEST(Articulation, TriangleHasNone) {
  const auto arts = articulation_points(workloads::fig2_triangle());
  EXPECT_TRUE(arts.empty());
}

TEST(Articulation, ChainOfTriangles) {
  // Two triangles sharing a vertex: the shared vertex is the cut.
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  const NodeId d = g.add_node();
  const NodeId e = g.add_node();
  g.add_edge(a, b, 1);
  g.add_edge(b, c, 1);
  g.add_edge(a, c, 1);
  g.add_edge(c, d, 1);
  g.add_edge(d, e, 1);
  g.add_edge(c, e, 1);
  const auto arts = articulation_points(g);
  EXPECT_EQ(arts, std::vector<NodeId>{c});
}

TEST(Biconnected, PartitionsAllEdges) {
  Prng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = workloads::random_two_terminal_dag(rng, {});
    const auto comps = biconnected_components(g);
    std::size_t total = 0;
    std::vector<bool> seen(g.edge_count(), false);
    for (const auto& comp : comps) {
      total += comp.size();
      for (const EdgeId e : comp) {
        EXPECT_FALSE(seen[e]) << "edge in two components";
        seen[e] = true;
      }
    }
    EXPECT_EQ(total, g.edge_count());
  }
}

TEST(Biconnected, BridgesAreSingletons) {
  const StreamGraph g = workloads::pipeline(4);
  const auto comps = biconnected_components(g);
  EXPECT_EQ(comps.size(), 3u);
  for (const auto& comp : comps) EXPECT_EQ(comp.size(), 1u);
}

TEST(Biconnected, TriangleIsOneComponent) {
  const auto comps = biconnected_components(workloads::fig2_triangle());
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].size(), 3u);
}

TEST(Biconnected, ParallelEdgesShareComponent) {
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_edge(a, b, 1);
  g.add_edge(a, b, 1);
  const auto comps = biconnected_components(g);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].size(), 2u);
}

TEST(Biconnected, SerialChainOfLadders) {
  // Ladder, bridge, ladder: expect two 5-edge blocks and one singleton.
  StreamGraph g;
  auto add_ladder = [&](NodeId from) {
    const NodeId a = g.add_node();
    const NodeId b = g.add_node();
    const NodeId y = g.add_node();
    g.add_edge(from, a, 1);
    g.add_edge(from, b, 1);
    g.add_edge(a, b, 1);
    g.add_edge(a, y, 1);
    g.add_edge(b, y, 1);
    return y;
  };
  const NodeId x = g.add_node();
  const NodeId mid = add_ladder(x);
  const NodeId mid2 = g.add_node();
  g.add_edge(mid, mid2, 1);
  (void)add_ladder(mid2);
  const auto comps = biconnected_components(g);
  std::vector<std::size_t> sizes;
  for (const auto& c : comps) sizes.push_back(c.size());
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 5, 5}));
}

}  // namespace
}  // namespace sdaf
