#include "src/cs4/decompose.h"

#include <gtest/gtest.h>

#include "src/graph/cycles.h"
#include "src/graph/validate.h"
#include "src/support/prng.h"
#include "src/workloads/random_ladder.h"
#include "src/workloads/random_sp.h"
#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

TEST(Decompose, PureSpPath) {
  const auto a = analyze_cs4(workloads::fig3_cycle());
  EXPECT_TRUE(a.is_cs4);
  EXPECT_TRUE(a.pure_sp);
  EXPECT_TRUE(a.ladders.empty());
  EXPECT_EQ(a.bridge_edges.size(), 1u);
}

TEST(Decompose, Fig4LeftIsOneLadder) {
  const auto a = analyze_cs4(workloads::fig4_left());
  EXPECT_TRUE(a.is_cs4);
  EXPECT_FALSE(a.pure_sp);
  ASSERT_EQ(a.ladders.size(), 1u);
  EXPECT_TRUE(a.bridge_edges.empty());
}

TEST(Decompose, ButterflyRejectedWithReason) {
  const auto a = analyze_cs4(workloads::fig4_butterfly());
  EXPECT_TRUE(a.two_terminal);
  EXPECT_FALSE(a.is_cs4);
  EXPECT_FALSE(a.reason.empty());
}

TEST(Decompose, ButterflyRewriteAccepted) {
  const auto a = analyze_cs4(workloads::butterfly_rewrite());
  EXPECT_TRUE(a.is_cs4);
  EXPECT_EQ(a.ladders.size(), 1u);
}

TEST(Decompose, RejectsMultiTerminal) {
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  g.add_edge(a, c, 1);
  g.add_edge(b, c, 1);
  const auto r = analyze_cs4(g);
  EXPECT_FALSE(r.two_terminal);
  EXPECT_FALSE(r.is_cs4);
}

TEST(Decompose, ChainMixesLaddersAndBridges) {
  Prng rng(7);
  workloads::RandomCs4Options opt;
  opt.components = 4;
  opt.ladder_probability = 0.5;
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = workloads::random_cs4_chain(rng, opt);
    const auto a = analyze_cs4(g);
    EXPECT_TRUE(a.is_cs4) << a.reason;
  }
}

class DecomposeOracle : public ::testing::TestWithParam<std::uint64_t> {};

// Theorem V.7 as a property test: the structural decomposition must accept
// exactly the graphs the exponential cycle-counting oracle calls CS4.
TEST_P(DecomposeOracle, AgreesWithEnumerationOracle) {
  Prng rng(GetParam() * 104729 + 1);
  for (int trial = 0; trial < 8; ++trial) {
    workloads::RandomDagOptions opt;
    opt.interior_nodes = 3 + static_cast<std::size_t>(trial % 5);
    opt.edge_density = 0.25 + 0.1 * static_cast<double>(trial % 4);
    const auto g = workloads::random_two_terminal_dag(rng, opt);
    if (!validate(g).two_terminal()) continue;
    const bool oracle = is_cs4_by_enumeration(g);
    const auto a = analyze_cs4(g);
    EXPECT_EQ(a.is_cs4, oracle)
        << "disagreement on " << g.node_count() << " nodes, "
        << g.edge_count() << " edges (reason: " << a.reason << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecomposeOracle,
                         ::testing::Range<std::uint64_t>(0, 40));

class DecomposePositive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecomposePositive, AcceptsAllGeneratedCs4Chains) {
  Prng rng(GetParam() * 31337 + 5);
  workloads::RandomCs4Options opt;
  opt.components = 1 + GetParam() % 4;
  opt.ladder.rungs = 1 + GetParam() % 3;
  opt.ladder.component_edges = 1 + GetParam() % 2;
  const auto g = workloads::random_cs4_chain(rng, opt);
  const auto a = analyze_cs4(g);
  EXPECT_TRUE(a.is_cs4) << a.reason;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecomposePositive,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace sdaf
