#include "src/runtime/pool_executor.h"

#include <gtest/gtest.h>

#include "src/core/compile.h"
#include "src/exec/session.h"
#include "src/exec/stream.h"
#include "src/sim/simulation.h"
#include "src/support/prng.h"
#include "src/workloads/filters.h"
#include "src/workloads/random_ladder.h"
#include "src/workloads/topologies.h"
#include "tests/harness/stress_harness.h"

namespace sdaf::runtime {
namespace {

// The differential harness: one workload through the deterministic
// simulator, the pooled scheduler, and (optionally) the thread-per-node
// executor must produce bit-identical sink data, per-edge traffic, and the
// same completion/deadlock verdict -- they implement one semantics.
struct ParityCase {
  const StreamGraph& graph;
  DummyMode mode;
  std::vector<std::int64_t> intervals;
  std::vector<std::uint8_t> forward_on_filter;
  std::uint64_t num_inputs = 0;
  double pass_rate = 1.0;
  std::uint64_t seed = 0;
};

std::vector<std::shared_ptr<Kernel>> case_kernels(const ParityCase& c) {
  return workloads::relay_kernels(c.graph, c.pass_rate, c.seed);
}

sim::SimResult run_sim(const ParityCase& c) {
  sim::Simulation s(c.graph, case_kernels(c));
  sim::SimOptions opt;
  opt.mode = c.mode;
  opt.intervals = c.intervals;
  opt.forward_on_filter = c.forward_on_filter;
  opt.num_inputs = c.num_inputs;
  return s.run(opt);
}

ExecutorOptions executor_options(const ParityCase& c) {
  ExecutorOptions opt;
  opt.mode = c.mode;
  opt.intervals = c.intervals;
  opt.forward_on_filter = c.forward_on_filter;
  opt.num_inputs = c.num_inputs;
  return opt;
}

void expect_parity(const sim::SimResult& expected, const RunResult& actual,
                   const std::string& label) {
  ASSERT_EQ(expected.deadlocked, actual.deadlocked) << label;
  ASSERT_EQ(expected.completed, actual.completed) << label;
  ASSERT_EQ(expected.sink_data, actual.sink_data) << label;
  ASSERT_EQ(expected.fires, actual.fires) << label;
  ASSERT_EQ(expected.edges.size(), actual.edges.size()) << label;
  for (std::size_t e = 0; e < expected.edges.size(); ++e) {
    EXPECT_EQ(expected.edges[e].data, actual.edges[e].data)
        << label << " edge " << e;
    EXPECT_EQ(expected.edges[e].dummies, actual.edges[e].dummies)
        << label << " edge " << e;
  }
}

void check_pool_parity(PoolExecutor& pool, const ParityCase& c,
                       const std::string& label,
                       bool against_executor = false) {
  const auto expected = run_sim(c);
  const auto pooled = pool.run(c.graph, case_kernels(c), executor_options(c));
  expect_parity(expected, pooled, label + " [pool]");
  if (against_executor) {
    Executor ex(c.graph, case_kernels(c));
    expect_parity(expected, ex.run(executor_options(c)),
                  label + " [threaded]");
  }
}

TEST(PoolExecutor, PipelineDeliversEverything) {
  const StreamGraph g = workloads::pipeline(4, 2);
  PoolExecutor pool(2);
  ExecutorOptions opt;
  opt.mode = DummyMode::None;
  opt.num_inputs = 100;
  const auto r = pool.run(g, workloads::passthrough_kernels(g), opt);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.deadlocked);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(r.edges[e].data, 100u);
    EXPECT_EQ(r.edges[e].dummies, 0u);
  }
  EXPECT_EQ(r.sink_data.back(), 100u);
}

TEST(PoolExecutor, Fig2DeadlockVerdictIsExact) {
  // Fig. 2's triangle with the adversarial filter and no dummies: the
  // simulator proves deadlock; the pool's quiescence check must agree
  // without any watchdog timing.
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  auto kernels = [&] {
    std::vector<std::shared_ptr<Kernel>> k;
    k.push_back(std::make_shared<RelayKernel>(
        workloads::adversarial_prefix_filter(1, 100)));
    k.push_back(pass_through_kernel());
    k.push_back(pass_through_kernel());
    return k;
  };
  sim::Simulation s(g, kernels());
  sim::SimOptions sopt;
  sopt.mode = DummyMode::None;
  sopt.num_inputs = 100;
  const auto expected = s.run(sopt);
  ASSERT_TRUE(expected.deadlocked);

  PoolExecutor pool(2);
  ExecutorOptions opt;
  opt.mode = DummyMode::None;
  opt.num_inputs = 100;
  const auto r = pool.run(g, kernels(), opt);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(expected.sink_data, r.sink_data);
}

TEST(PoolExecutor, Fig2SafeWithCompiledIntervalsBothModes) {
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  PoolExecutor pool(2);
  for (const auto algorithm :
       {core::Algorithm::Propagation, core::Algorithm::NonPropagation}) {
    core::CompileOptions copt;
    copt.algorithm = algorithm;
    const auto compiled = core::compile(g, copt);
    ASSERT_TRUE(compiled.ok);
    ParityCase c{g,
                 algorithm == core::Algorithm::Propagation
                     ? DummyMode::Propagation
                     : DummyMode::NonPropagation,
                 compiled.integer_intervals(core::Rounding::Floor),
                 {},
                 /*num_inputs=*/100,
                 /*pass_rate=*/1.0,
                 /*seed=*/7};
    if (algorithm == core::Algorithm::Propagation)
      c.forward_on_filter = compiled.forward_on_filter();
    // The triangle needs the adversarial kernels, not relays: build inline.
    std::vector<std::shared_ptr<Kernel>> kernels;
    kernels.push_back(std::make_shared<RelayKernel>(
        workloads::adversarial_prefix_filter(1, 100)));
    kernels.push_back(pass_through_kernel());
    kernels.push_back(pass_through_kernel());
    const auto r = pool.run(g, std::move(kernels), executor_options(c));
    EXPECT_TRUE(r.completed) << to_string(algorithm);
    EXPECT_EQ(r.sink_data[2], 100u);
  }
}

TEST(PoolExecutor, RandomizedParityWithSimulatorBothModes) {
  // >= 100 randomized workloads x both dummy algorithms, bit-identical
  // against the simulator (and the threaded executor -- the harness always
  // runs all three). SP-DAGs and SP-ladders, random filtering; ported onto
  // the stress harness, which prints a one-line repro on mismatch.
  Prng rng(0x9A417EE5);
  PoolExecutor pool(3);
  int cases = 0;
  for (int i = 0; i < 55; ++i) {
    for (const auto mode :
         {DummyMode::Propagation, DummyMode::NonPropagation}) {
      harness::CaseSpec spec;
      spec.topology =
          i < 30 ? harness::Topology::Sp : harness::Topology::Ladder;
      spec.seed = rng.next_u64();
      spec.num_inputs = 40 + rng.next_below(60);
      spec.pass_rate = 0.3 + 0.7 * rng.next_double();
      spec.mode = mode;
      spec.batch = 1;
      const auto failure = harness::run_differential(spec, &pool);
      ASSERT_FALSE(failure.has_value()) << *failure;
      ++cases;
    }
  }
  EXPECT_GE(cases, 100);
}

TEST(PoolExecutor, MultiTenantInstancesInterleave) {
  // Several concurrent instances of different graphs on one pool: each
  // result must match its own simulator run, untouched by co-tenants.
  const StreamGraph pipeline = workloads::pipeline(6, 2);
  const StreamGraph splitjoin = workloads::splitjoin(3, 2, 4);
  const StreamGraph triangle = workloads::fig2_triangle(2, 2, 2);
  const auto compiled = core::compile(triangle);
  ASSERT_TRUE(compiled.ok);

  PoolExecutor pool(3);
  struct Submitted {
    ParityCase c;
    PoolExecutor::TicketId ticket;
  };
  std::vector<Submitted> submitted;
  for (int round = 0; round < 4; ++round) {
    ParityCase p{pipeline, DummyMode::None, {}, {}, 120, 0.8,
                 0x50u + static_cast<std::uint64_t>(round)};
    ParityCase s{splitjoin, DummyMode::None, {}, {}, 90, 1.0,
                 0x60u + static_cast<std::uint64_t>(round)};
    ParityCase t{triangle,
                 DummyMode::Propagation,
                 compiled.integer_intervals(core::Rounding::Floor),
                 compiled.forward_on_filter(),
                 70,
                 0.5,
                 0x70u + static_cast<std::uint64_t>(round)};
    for (const auto& c : {p, s, t})
      submitted.push_back(
          {c, pool.submit(c.graph, case_kernels(c), executor_options(c))});
  }
  for (auto& sub : submitted)
    expect_parity(run_sim(sub.c), pool.wait(sub.ticket), "multi-tenant");
}

TEST(PoolExecutor, TenThousandNodeLadderOnSixteenThreads) {
  // The scaling claim: a >= 10k-node graph runs on a fixed pool (the
  // thread-per-node executor would need >= 10k OS threads here).
  workloads::RandomLadderOptions opt;
  opt.rungs = 2500;
  opt.left_interior = 5000;
  opt.right_interior = 5000;
  opt.component_edges = 1;
  opt.max_buffer = 4;
  Prng rng(0xFEED);
  const StreamGraph g = workloads::random_ladder(rng, opt);
  ASSERT_GE(g.node_count(), 10000u);

  PoolExecutor pool(8);
  ASSERT_LE(pool.worker_count(), 16u);
  ExecutorOptions eopt;
  eopt.mode = DummyMode::None;
  eopt.num_inputs = 3;
  const auto r = pool.run(g, workloads::passthrough_kernels(g), eopt);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.sink_data[g.unique_sink()],
            3u * g.in_degree(g.unique_sink()));
}

TEST(PoolExecutor, TinyRingExercisesOverflowAndSleepPath) {
  // A 4-slot deque forces constant ring growth and steal contention while
  // workers sleep and wake, hammering the paths a 256 ring rarely reaches.
  // Results must stay bit-identical to the simulator.
  PoolExecutor::Options popt;
  popt.workers = 3;
  popt.max_steps_per_quantum = 2;  // frequent yields: maximal re-queuing
  popt.deque_capacity = 4;
  PoolExecutor pool(popt);
  const StreamGraph g = workloads::splitjoin(4, 3, 2);
  for (int round = 0; round < 5; ++round) {
    ParityCase c{g,      DummyMode::None,
                 {},     {},
                 200,    0.7,
                 0xABCu + static_cast<std::uint64_t>(round)};
    check_pool_parity(pool, c, "tiny-ring round " + std::to_string(round));
  }
}

// ---- scheduler-v2 quiescence regressions: exact verdicts while steals
// ---- and futex parks are in flight ----

// An adversarial pool for the quiescence regressions: more workers than the
// workload has nodes (every local enqueue is typically drained by a thief),
// 2-slot deques (rings grow mid-steal), 1-step quanta (tasks bounce through
// the injector constantly) and heavy injected yielding. Under these options
// the instance reaches its quiescence point over and over with steal CASes
// and park/wake handshakes genuinely in flight.
PoolExecutor::Options adversarial_options(std::uint64_t seed) {
  PoolExecutor::Options popt;
  popt.workers = 6;
  popt.deque_capacity = 2;
  popt.max_steps_per_quantum = 1;
  popt.perturb_yield_in_256 = 96;
  popt.seed = seed;
  return popt;
}

TEST(PoolExecutor, DeadlockVerdictExactWhileStealsInFlight) {
  // The Fig. 2 wedge on the adversarial pool: the deadlock verdict must be
  // exactly the simulator's, certified by quiescence alone -- a task held
  // by a thief between its winning steal CAS and run_task still counts as
  // pending work, so the distributed queues never produce a false verdict.
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  auto kernels = [&] {
    std::vector<std::shared_ptr<Kernel>> k;
    k.push_back(std::make_shared<RelayKernel>(
        workloads::adversarial_prefix_filter(1, 100)));
    k.push_back(pass_through_kernel());
    k.push_back(pass_through_kernel());
    return k;
  };
  sim::Simulation s(g, kernels());
  sim::SimOptions sopt;
  sopt.mode = DummyMode::None;
  sopt.num_inputs = 100;
  const auto expected = s.run(sopt);
  ASSERT_TRUE(expected.deadlocked);

  ExecutorOptions opt;
  opt.mode = DummyMode::None;
  opt.num_inputs = 100;
  for (std::uint64_t round = 0; round < 8; ++round) {
    PoolExecutor pool(adversarial_options(0x5DEA1 + round));
    const auto r = pool.run(g, kernels(), opt);
    EXPECT_TRUE(r.deadlocked) << "round " << round;
    EXPECT_FALSE(r.completed) << "round " << round;
    EXPECT_EQ(expected.sink_data, r.sink_data) << "round " << round;
    EXPECT_FALSE(r.state_dump.empty()) << "round " << round;
  }
}

TEST(PoolExecutor, RandomizedWedgeVerdictsExactUnderPerturbation) {
  // Randomized wedge-capable workloads (avoidance off, message-at-a-time):
  // completion/deadlock verdict, traffic, fires and sink data bit-identical
  // to the simulator under the steal-heavy and park-storm regimes. The
  // harness builds the perturbed pool itself from spec.sched.
  Prng rng(0x3D9E);
  int deadlocks = 0;
  for (int i = 0; i < 24; ++i) {
    harness::CaseSpec spec;
    spec.topology = i % 3 == 0 ? harness::Topology::Triangle
                               : harness::Topology::Sp;
    spec.seed = rng.next_u64();
    spec.num_inputs = 30 + rng.next_below(50);
    spec.pass_rate = 0.3 + 0.7 * rng.next_double();
    spec.mode = DummyMode::None;
    spec.batch = 1;
    spec.sched = i % 2 == 0 ? harness::Sched::StealHeavy
                            : harness::Sched::ParkStorm;
    bool deadlocked = false;
    const auto failure = harness::run_differential(spec, nullptr, &deadlocked);
    ASSERT_FALSE(failure.has_value()) << *failure;
    if (deadlocked) ++deadlocks;
  }
  // The sweep is only a quiescence regression if some cases actually wedge.
  EXPECT_GE(deadlocks, 1);
}

TEST(PoolExecutor, OpenPortStreamIdlesNotDeadlocksUnderAdversarialSchedule) {
  // A live stream on the adversarial pool, pushed in bursts with full
  // drains between them: the instance quiesces mid-steal after every burst,
  // and each time the open ports must hold the verdict ("idle, awaiting the
  // caller") rather than let a racing finalize declare deadlock or
  // completion early.
  const StreamGraph g = workloads::pipeline(3, 2);
  PoolExecutor pool(adversarial_options(0x0BEA7));
  exec::Session session(g, workloads::passthrough_kernels(g));
  exec::StreamSpec ss;
  ss.run.backend = exec::Backend::Pooled;
  ss.run.pool = &pool;
  ss.run.mode = DummyMode::None;
  exec::Stream stream = session.open(ss);
  std::vector<exec::OutputPort::Item> got;
  for (std::int64_t burst = 0; burst < 10; ++burst) {
    for (std::int64_t i = 0; i < 6; ++i)
      ASSERT_TRUE(stream.input(0).push(Value(burst * 6 + i)));
    // Drain everything this burst produced: the instance goes fully
    // quiescent (all tasks parked, workers futex-parked) with the port
    // still open before the next burst arrives.
    while (got.size() < static_cast<std::size_t>((burst + 1) * 6))
      if (auto item = stream.output(0).poll()) got.push_back(*item);
  }
  stream.input(0).close();
  const exec::RunReport report = stream.finish();
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.deadlocked);
  ASSERT_EQ(got.size(), 60u);
  for (std::size_t k = 0; k < got.size(); ++k)
    EXPECT_EQ(got[k].value.as<std::int64_t>(), static_cast<std::int64_t>(k));
}

TEST(PoolExecutor, BarrierSnapshotPendingMidStealRestoresExactly) {
  // The crash differential with a barrier snapshot racing the steal-heavy
  // regime: push a random prefix, take an asynchronous barrier snapshot on
  // the perturbed pool (markers are occupancy-neutral pending work, so the
  // barrier must complete even though every marker hop crosses a steal),
  // destroy the stream, restore and replay -- bit-identical to an
  // uninterrupted run. Cross-checks tests/test_ckpt.cpp from the scheduler
  // side.
  Prng rng(0xC4A5);
  for (int i = 0; i < 4; ++i) {
    harness::CaseSpec spec;
    spec.topology =
        i % 2 == 0 ? harness::Topology::Ladder : harness::Topology::Sp;
    spec.seed = rng.next_u64();
    spec.num_inputs = 40;
    spec.pass_rate = 0.6;
    spec.mode = DummyMode::Propagation;
    spec.batch = 1;
    spec.feed = harness::FeedMode::Port;
    spec.chunk = 5;
    spec.sched =
        i < 2 ? harness::Sched::StealHeavy : harness::Sched::ParkStorm;
    const auto failure = harness::run_crash_differential(
        spec, exec::Backend::Pooled, rng.next_u64(), nullptr);
    ASSERT_FALSE(failure.has_value()) << *failure;
  }
}

TEST(PoolExecutor, RepeatedRunsAreIndependent) {
  const StreamGraph g = workloads::fig1_splitjoin(2);
  PoolExecutor pool(2);
  ExecutorOptions opt;
  opt.mode = DummyMode::None;
  opt.num_inputs = 20;
  const auto r1 = pool.run(g, workloads::passthrough_kernels(g), opt);
  const auto r2 = pool.run(g, workloads::passthrough_kernels(g), opt);
  EXPECT_TRUE(r1.completed);
  EXPECT_TRUE(r2.completed);
  EXPECT_EQ(r1.total_data(), r2.total_data());
}

}  // namespace
}  // namespace sdaf::runtime
