#include "src/support/rational.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sdaf {
namespace {

TEST(Rational, DefaultIsInfinity) {
  const Rational r;
  EXPECT_TRUE(r.is_infinite());
  EXPECT_FALSE(r.is_finite());
  EXPECT_EQ(r, Rational::infinity());
}

TEST(Rational, IntegerConstruction) {
  const Rational r(7);
  EXPECT_TRUE(r.is_finite());
  EXPECT_EQ(r.num(), 7);
  EXPECT_EQ(r.den(), 1);
  EXPECT_TRUE(r.is_integer());
}

TEST(Rational, NormalizesToLowestTerms) {
  const Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, ZeroNumerator) {
  const Rational r(0, 5);
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r, Rational(0));
}

TEST(Rational, EqualityAcrossRepresentations) {
  EXPECT_EQ(Rational(2, 3), Rational(4, 6));
  EXPECT_NE(Rational(2, 3), Rational(3, 4));
  EXPECT_NE(Rational(1), Rational::infinity());
  EXPECT_EQ(Rational::infinity(), Rational::infinity());
}

TEST(Rational, Ordering) {
  EXPECT_LT(Rational(1, 2), Rational(2, 3));
  EXPECT_LT(Rational(5), Rational::infinity());
  EXPECT_FALSE(Rational::infinity() < Rational(5));
  EXPECT_FALSE(Rational::infinity() < Rational::infinity());
  EXPECT_LE(Rational(3), Rational(3));
  EXPECT_GT(Rational(7, 2), Rational(3));
  EXPECT_GE(Rational::infinity(), Rational(1000000));
}

TEST(Rational, Addition) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(2) + Rational(3), Rational(5));
  EXPECT_TRUE((Rational(1) + Rational::infinity()).is_infinite());
  EXPECT_TRUE((Rational::infinity() + Rational::infinity()).is_infinite());
}

TEST(Rational, Division) {
  EXPECT_EQ(Rational(8) / Rational(3), Rational(8, 3));
  EXPECT_EQ(Rational(6) / Rational(3), Rational(2));
  EXPECT_TRUE((Rational::infinity() / Rational(4)).is_infinite());
  EXPECT_EQ(Rational(3, 4) / Rational(3, 2), Rational(1, 2));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(8, 3).floor(), 2);
  EXPECT_EQ(Rational(8, 3).ceil(), 3);  // the paper's Fig. 3 roundup
  EXPECT_EQ(Rational(6, 3).floor(), 2);
  EXPECT_EQ(Rational(6, 3).ceil(), 2);
  EXPECT_EQ(Rational(2, 3).floor(), 0);
  EXPECT_EQ(Rational(2, 3).ceil(), 1);
  EXPECT_EQ(Rational(0).ceil(), 0);
}

TEST(Rational, MinHelper) {
  EXPECT_EQ(min(Rational(3), Rational(5)), Rational(3));
  EXPECT_EQ(min(Rational::infinity(), Rational(5)), Rational(5));
  EXPECT_TRUE(min(Rational::infinity(), Rational::infinity()).is_infinite());
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(5).to_string(), "5");
  EXPECT_EQ(Rational(8, 3).to_string(), "8/3");
  EXPECT_EQ(Rational::infinity().to_string(), "inf");
  std::ostringstream os;
  os << Rational(7, 2);
  EXPECT_EQ(os.str(), "7/2");
}

TEST(Rational, LargeValuesStayExact) {
  const Rational big(1'000'000'007, 3);
  EXPECT_EQ(big.num(), 1'000'000'007);
  EXPECT_EQ((big + big).num(), 2'000'000'014);
}

}  // namespace
}  // namespace sdaf
