#include "src/cs4/k4_witness.h"

#include <gtest/gtest.h>

#include "src/support/prng.h"
#include "src/workloads/random_ladder.h"
#include "src/workloads/random_sp.h"
#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

TEST(K4, ButterflyContainsK4) {
  const auto w = find_k4_subdivision(workloads::fig4_butterfly());
  ASSERT_TRUE(w.has_value());
  EXPECT_GE(w->remainder_nodes.size(), 4u);
}

TEST(K4, ExplicitK4Directed) {
  // K4 on {a,b,c,d} oriented acyclically.
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  const NodeId d = g.add_node();
  g.add_edge(a, b, 1);
  g.add_edge(a, c, 1);
  g.add_edge(a, d, 1);
  g.add_edge(b, c, 1);
  g.add_edge(b, d, 1);
  g.add_edge(c, d, 1);
  const auto w = find_k4_subdivision(g);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->remainder_nodes.size(), 4u);
}

TEST(K4, SubdividedK4StillDetected) {
  // Replace each K4 edge with a 2-hop path: a subdivision, not a K4 itself.
  StreamGraph g;
  std::vector<NodeId> corner;
  for (int i = 0; i < 4; ++i) corner.push_back(g.add_node());
  auto path = [&](NodeId u, NodeId v) {
    const NodeId mid = g.add_node();
    g.add_edge(u, mid, 1);
    g.add_edge(mid, v, 1);
  };
  path(corner[0], corner[1]);
  path(corner[0], corner[2]);
  path(corner[0], corner[3]);
  path(corner[1], corner[2]);
  path(corner[1], corner[3]);
  path(corner[2], corner[3]);
  const auto w = find_k4_subdivision(g);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->remainder_nodes.size(), 4u);  // subdividers contracted away
}

TEST(K4, SpDagsAreK4Free) {
  // Lemma V.1 + Lemma III.4: SP-DAGs are CS4, hence K4-free.
  Prng rng(42);
  for (int trial = 0; trial < 25; ++trial) {
    workloads::RandomSpOptions opt;
    opt.target_edges = 20;
    const auto built = workloads::random_sp(rng, opt);
    EXPECT_FALSE(find_k4_subdivision(built.graph).has_value());
  }
}

TEST(K4, LaddersAreK4Free) {
  Prng rng(43);
  for (int trial = 0; trial < 25; ++trial) {
    workloads::RandomLadderOptions opt;
    opt.rungs = 1 + static_cast<std::size_t>(trial % 5);
    const auto g = workloads::random_ladder(rng, opt);
    EXPECT_FALSE(find_k4_subdivision(g).has_value());
  }
}

TEST(K4, CrossingRungsCreateK4) {
  // Lemma V.6: crossing chord graphs force a K4 subdivision.
  StreamGraph g;
  const NodeId x = g.add_node();
  const NodeId u1 = g.add_node();
  const NodeId u2 = g.add_node();
  const NodeId v1 = g.add_node();
  const NodeId v2 = g.add_node();
  const NodeId y = g.add_node();
  g.add_edge(x, u1, 1);
  g.add_edge(u1, u2, 1);
  g.add_edge(u2, y, 1);
  g.add_edge(x, v1, 1);
  g.add_edge(v1, v2, 1);
  g.add_edge(v2, y, 1);
  g.add_edge(u1, v2, 1);
  g.add_edge(u2, v1, 1);
  EXPECT_TRUE(find_k4_subdivision(g).has_value());
}

TEST(K4, TreesAndPipelinesAreK4Free) {
  EXPECT_FALSE(find_k4_subdivision(workloads::pipeline(10)).has_value());
  EXPECT_FALSE(
      find_k4_subdivision(workloads::splitjoin(5, 3)).has_value());
}

// Lemma V.1 is one-directional: K4-freeness is necessary for CS4, so every
// CS4 chain must be K4-free.
TEST(K4, Cs4ChainsAreK4Free) {
  Prng rng(44);
  for (int trial = 0; trial < 15; ++trial) {
    const auto g = workloads::random_cs4_chain(rng, {});
    EXPECT_FALSE(find_k4_subdivision(g).has_value());
  }
}

}  // namespace
}  // namespace sdaf
