#include "src/core/compile.h"

#include <gtest/gtest.h>

#include "src/core/report.h"
#include "src/graph/cycles.h"
#include "src/intervals/baseline.h"
#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

using core::Algorithm;
using core::Classification;
using core::CompileOptions;
using core::GeneralPolicy;
using core::kNoDummyInterval;
using core::Rounding;

TEST(Compile, ClassifiesSpDag) {
  const auto r = core::compile(workloads::fig3_cycle());
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.classification, Classification::SpDag);
  EXPECT_EQ(r.intervals[0], Rational(6));
  EXPECT_EQ(r.intervals[1], Rational(8));
}

TEST(Compile, ClassifiesCs4Chain) {
  const auto r = core::compile(workloads::fig4_left());
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.classification, Classification::Cs4Chain);
}

TEST(Compile, GeneralFallbackMatchesBaseline) {
  const StreamGraph g = workloads::fig4_butterfly(3);
  const auto r = core::compile(g);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.classification, Classification::GeneralDag);
  EXPECT_EQ(r.intervals, propagation_intervals_exact(g));
}

TEST(Compile, RejectPolicyRefusesButterfly) {
  CompileOptions opt;
  opt.general_policy = GeneralPolicy::Reject;
  const auto r = core::compile(workloads::fig4_butterfly(), opt);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.classification, Classification::GeneralDag);
  EXPECT_NE(r.diagnostics.find("rejected"), std::string::npos);
}

TEST(Compile, RejectsNonTwoTerminal) {
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  g.add_edge(a, b, 1);
  g.add_edge(a, c, 1);  // two sinks
  const auto r = core::compile(g);
  EXPECT_FALSE(r.ok);
}

TEST(Compile, NonPropagationAlgorithmSelectable) {
  CompileOptions opt;
  opt.algorithm = Algorithm::NonPropagation;
  const auto r = core::compile(workloads::fig3_cycle(), opt);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.intervals[1], Rational(8, 3));
}

TEST(Compile, IntegerIntervalsPaperCeil) {
  CompileOptions opt;
  opt.algorithm = Algorithm::NonPropagation;
  const auto r = core::compile(workloads::fig3_cycle(), opt);
  const auto ints = r.integer_intervals(Rounding::PaperCeil);
  EXPECT_EQ(ints[0], 2);  // 6/3
  EXPECT_EQ(ints[1], 3);  // ceil(8/3), the paper's roundup
  EXPECT_EQ(ints[2], 2);
}

TEST(Compile, IntegerIntervalsFloorClampsToOne) {
  // A ratio below 1 floors to 0; the materialization clamps to 1 (a node
  // cannot send dummies more often than once per sequence number).
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  g.add_edge(a, b, 1);
  g.add_edge(b, c, 1);
  g.add_edge(a, c, 1);  // nonprop [ab] = 1/2
  CompileOptions opt;
  opt.algorithm = Algorithm::NonPropagation;
  const auto r = core::compile(g, opt);
  EXPECT_EQ(r.intervals[0], Rational(1, 2));
  const auto ints = r.integer_intervals(Rounding::Floor);
  EXPECT_EQ(ints[0], 1);
}

TEST(Compile, InfiniteIntervalsMarked) {
  const auto r = core::compile(workloads::pipeline(4));
  const auto ints = r.integer_intervals(Rounding::PaperCeil);
  for (const auto v : ints) EXPECT_EQ(v, kNoDummyInterval);
}

TEST(Compile, LadderMethodsAgreeThroughApi) {
  CompileOptions enum_opt, rec_opt;
  rec_opt.ladder_method = LadderMethod::PaperRecurrence;
  const StreamGraph g = workloads::fig5_ladder(3);
  const auto a = core::compile(g, enum_opt);
  const auto b = core::compile(g, rec_opt);
  EXPECT_EQ(a.intervals, b.intervals);
}

TEST(Compile, OnCycleFlags) {
  const auto r = core::compile(workloads::fig2_triangle());
  EXPECT_EQ(r.on_cycle, (std::vector<std::uint8_t>{1, 1, 1}));
  const auto p = core::compile(workloads::pipeline(4));
  EXPECT_EQ(p.on_cycle, (std::vector<std::uint8_t>{0, 0, 0}));
}

TEST(Compile, ForwardSetFig3) {
  // Fig. 3: only a's out-edges keep schedules; the four interior edges of
  // the cycle are continuation edges.
  const auto r = core::compile(workloads::fig3_cycle());
  EXPECT_EQ(r.forward_on_filter(),
            (std::vector<std::uint8_t>{0, 0, 1, 1, 1, 1}));
}

TEST(Compile, ForwardSetTriangle) {
  // Edge order: 0 = A->B, 1 = B->C, 2 = A->C. A's out-edges keep their
  // schedules (every cycle through them starts at A); B->C continues the
  // A->B->C run.
  const auto r = core::compile(workloads::fig2_triangle());
  EXPECT_EQ(r.forward_on_filter(), (std::vector<std::uint8_t>{0, 1, 0}));
  EXPECT_TRUE(r.intervals[0].is_finite());
  EXPECT_TRUE(r.intervals[1].is_infinite());  // BC: forwarded, not scheduled
  EXPECT_TRUE(r.intervals[2].is_finite());
}

TEST(Compile, ForwardSetPipelineEmpty) {
  const auto r = core::compile(workloads::pipeline(5));
  for (const auto f : r.forward_on_filter()) EXPECT_EQ(f, 0);
}

TEST(Compile, ForwardSetChainedRungs) {
  // Fig. 4 left: the rung a->b continues the cycle X-a-b (first edge X->a),
  // and a->Y continues X-a-Y; only X's out-edges stay scheduled-only...
  // a->b is also *first* on the cycle a-b-Y it sources, but continuation on
  // X-a-b wins.
  const auto r = core::compile(workloads::fig4_left());
  const auto fwd = r.forward_on_filter();
  EXPECT_EQ(fwd[0], 0);  // X->a: every cycle through it starts at X
  EXPECT_EQ(fwd[1], 0);  // X->b
  EXPECT_EQ(fwd[2], 1);  // a->b: continuation of cycle X-a-b
  EXPECT_EQ(fwd[3], 1);  // a->Y: continuation of cycle X-a-Y-b
  EXPECT_EQ(fwd[4], 1);  // b->Y
}

TEST(Compile, ForwardSetAgreesWithGeneralFallbackOnCs4Graphs) {
  // The CS4 structural computation and the general cycle-enumeration one
  // must produce the same forwarding set wherever both apply.
  for (const StreamGraph& g :
       {workloads::fig2_triangle(), workloads::fig3_cycle(),
        workloads::fig4_left(), workloads::butterfly_rewrite(),
        workloads::fig5_ladder()}) {
    const auto cs4 = core::compile(g);
    ASSERT_TRUE(cs4.ok);
    ASSERT_NE(cs4.classification, Classification::GeneralDag);
    // Recompute via the exponential path by pretending the graph is
    // general: reuse the internal logic through a butterfly-style call is
    // not exposed, so compare against first-edge analysis of enumerated
    // cycles directly.
    const auto enumeration = enumerate_undirected_cycles(g);
    std::vector<std::uint8_t> expect(g.edge_count(), 0);
    for (const auto& cycle : enumeration.cycles)
      for (const auto& run : directed_runs(g, cycle))
        for (std::size_t k = 1; k < run.edges.size(); ++k)
          expect[run.edges[k]] = 1;
    EXPECT_EQ(cs4.forward_on_filter(), expect);
  }
}

TEST(Report, DescribesCompile) {
  const StreamGraph g = workloads::fig2_triangle();
  const auto r = core::compile(g);
  const std::string text = core::describe(g, r);
  EXPECT_NE(text.find("SP-DAG"), std::string::npos);
  EXPECT_NE(text.find("A -> B"), std::string::npos);
  EXPECT_NE(text.find("dummy-sending nodes (1): A"), std::string::npos);
}

TEST(Report, DescribesRejection) {
  CompileOptions opt;
  opt.general_policy = GeneralPolicy::Reject;
  const StreamGraph g = workloads::fig4_butterfly();
  const auto r = core::compile(g, opt);
  const std::string text = core::describe(g, r);
  EXPECT_NE(text.find("rejected"), std::string::npos);
}

}  // namespace
}  // namespace sdaf
