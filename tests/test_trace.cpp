#include "src/runtime/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/core/compile.h"
#include "src/exec/session.h"
#include "src/workloads/filters.h"
#include "src/workloads/topologies.h"

namespace sdaf::runtime {
namespace {

TEST(Tracer, RecordsAndSnapshots) {
  Tracer t(8);
  t.record(TraceEvent{TraceKind::Fire, 3, 0, 42, 7});
  t.record(TraceEvent{TraceKind::DataSent, 3, 1, 42, 7});
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceKind::Fire);
  EXPECT_EQ(events[1].slot, 1u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, BoundedDropsOldest) {
  Tracer t(3);
  for (std::uint64_t i = 0; i < 10; ++i)
    t.record(TraceEvent{TraceKind::Fire, 0, 0, i, i});
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.dropped(), 7u);
  const auto events = t.snapshot();
  EXPECT_EQ(events.front().seq, 7u);
  EXPECT_EQ(events.back().seq, 9u);
}

TEST(Tracer, FilterAndForNode) {
  Tracer t(16);
  t.record(TraceEvent{TraceKind::Fire, 1, 0, 0, 0});
  t.record(TraceEvent{TraceKind::DummySent, 1, 0, 0, 0});
  t.record(TraceEvent{TraceKind::Fire, 2, 0, 0, 0});
  EXPECT_EQ(t.filter(TraceKind::Fire).size(), 2u);
  EXPECT_EQ(t.filter(TraceKind::DummySent).size(), 1u);
  EXPECT_EQ(t.for_node(1).size(), 2u);
  EXPECT_EQ(t.for_node(9).size(), 0u);
}

TEST(Tracer, EventToString) {
  const TraceEvent e{TraceKind::DummySent, 4, 2, 17, 99};
  const std::string s = e.to_string();
  EXPECT_NE(s.find("dummy_sent"), std::string::npos);
  EXPECT_NE(s.find("node=4"), std::string::npos);
  EXPECT_NE(s.find("seq=17"), std::string::npos);
}

TEST(TracerDeathTest, RejectsZeroCapacity) {
  EXPECT_DEATH(Tracer(0), "precondition");
}

TEST(Tracer, TailForNode) {
  Tracer t(32);
  for (std::uint64_t i = 0; i < 10; ++i)
    t.record(TraceEvent{TraceKind::Fire, i % 2, 0, i, i});
  const auto tail = t.tail_for_node(0, 3);
  ASSERT_EQ(tail.size(), 3u);
  // The *last* three node-0 events (seqs 4, 6, 8), oldest first.
  EXPECT_EQ(tail[0].seq, 4u);
  EXPECT_EQ(tail[2].seq, 8u);
  EXPECT_TRUE(t.tail_for_node(7, 3).empty());
}

TEST(Tracer, SnapshotUnderConcurrentWritersIsBoundedAndOrdered) {
  // The snapshot path copies the ring in bounded chunks, releasing the lock
  // between chunks so a hot writer is stalled for at most one chunk at a
  // time. Events a writer laps while the reader is off the lock are
  // *skipped*, never duplicated or torn: every snapshot must be a strictly
  // increasing subsequence of the recorded seqs, bounded by the capacity.
  constexpr std::size_t kCapacity = 1u << 10;
  constexpr std::uint64_t kRecords = 200'000;  // laps the ring ~200 times
  Tracer t(kCapacity);
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (std::uint64_t seq = 0; seq < kRecords; ++seq)
      t.record(TraceEvent{TraceKind::Fire, 0, 0, seq, 0});
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) {
    const auto events = t.snapshot();
    ASSERT_LE(events.size(), kCapacity);
    for (std::size_t i = 1; i < events.size(); ++i)
      ASSERT_LT(events[i - 1].seq, events[i].seq) << "torn snapshot";
  }
  writer.join();
  // Quiescent now: the final snapshot is the exact ring tail.
  const auto events = t.snapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().seq - events.front().seq + 1, events.size());
}

TEST(SimTracing, PipelineEventAccounting) {
  const StreamGraph g = workloads::pipeline(3, 2);
  exec::Session session(g, workloads::passthrough_kernels(g));
  Tracer tracer(1u << 16);
  exec::RunSpec spec;
  spec.mode = DummyMode::None;
  spec.num_inputs = 20;
  spec.tracer = &tracer;
  const auto r = session.run(spec);
  ASSERT_TRUE(r.completed);
  // 3 nodes x 20 firings, 2 edges x 20 data sends/consumes, 2 EOS floods.
  EXPECT_EQ(tracer.filter(TraceKind::Fire).size(), 60u);
  EXPECT_EQ(tracer.filter(TraceKind::DataSent).size(), 40u);
  EXPECT_EQ(tracer.filter(TraceKind::DataConsumed).size(), 40u);
  EXPECT_EQ(tracer.filter(TraceKind::EosSent).size(), 2u);
  EXPECT_EQ(tracer.filter(TraceKind::DummySent).size(), 0u);
}

TEST(SimTracing, DummyOriginationAndForwardingVisible) {
  // Fig. 2 with A filtering A->C: the trace shows dummies originating at A
  // (node 0) on its second out-slot and being consumed by C.
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  const auto compiled = core::compile(g);
  std::vector<std::shared_ptr<Kernel>> kernels;
  kernels.push_back(std::make_shared<RelayKernel>(
      workloads::adversarial_prefix_filter(1, 1000)));
  kernels.push_back(pass_through_kernel());
  kernels.push_back(pass_through_kernel());
  exec::Session session(g, kernels);
  Tracer tracer(1u << 16);
  exec::RunSpec spec;
  spec.mode = DummyMode::Propagation;
  spec.intervals = compiled.integer_intervals(core::Rounding::Floor);
  spec.forward_on_filter = compiled.forward_on_filter();
  spec.num_inputs = 100;
  spec.tracer = &tracer;
  ASSERT_TRUE(session.run(spec).completed);

  const auto sent = tracer.filter(TraceKind::DummySent);
  ASSERT_FALSE(sent.empty());
  for (const auto& e : sent) {
    EXPECT_EQ(e.node, 0u);   // only A originates here
    EXPECT_EQ(e.slot, 1u);   // on A->C
  }
  const auto consumed = tracer.filter(TraceKind::DummyConsumed);
  ASSERT_FALSE(consumed.empty());
  for (const auto& e : consumed) EXPECT_EQ(e.node, 2u);  // C consumed them

  // Sequence numbers on A->C respect the compiled interval: consecutive
  // dummy sends are at most [A->C] apart.
  const auto interval =
      compiled.integer_intervals(core::Rounding::Floor)[2];
  for (std::size_t i = 1; i < sent.size(); ++i)
    EXPECT_LE(sent[i].seq - sent[i - 1].seq,
              static_cast<std::uint64_t>(interval));
}

TEST(ThreadedTracing, WallClockTimestampsAttached) {
  // Off the simulator there is no sweep tick, so trace events carry a
  // steady-clock ts_ns instead (and tick stays 0). The sim keeps ts_ns == 0
  // -- its deterministic tick is the timestamp.
  const StreamGraph g = workloads::pipeline(3, 2);
  exec::Session session(g, workloads::passthrough_kernels(g));
  Tracer tracer(1u << 14);
  exec::RunSpec spec;
  spec.backend = exec::Backend::Threaded;
  spec.mode = DummyMode::None;
  spec.num_inputs = 20;
  spec.tracer = &tracer;
  ASSERT_TRUE(session.run(spec).completed);
  const auto events = tracer.snapshot();
  ASSERT_FALSE(events.empty());
  for (const auto& e : events) {
    EXPECT_NE(e.ts_ns, 0u);
    EXPECT_EQ(e.tick, 0u);
  }
  // to_string surfaces the timestamp for state_dump readers.
  EXPECT_NE(events.front().to_string().find("ts_ns="), std::string::npos);

  Tracer sim_tracer(1u << 14);
  exec::RunSpec sim_spec = spec;
  sim_spec.backend = exec::Backend::Sim;
  sim_spec.tracer = &sim_tracer;
  ASSERT_TRUE(session.run(sim_spec).completed);
  const auto sim_events = sim_tracer.snapshot();
  ASSERT_FALSE(sim_events.empty());
  for (const auto& e : sim_events) EXPECT_EQ(e.ts_ns, 0u);
}

TEST(SimTracing, TicksAreMonotone) {
  const StreamGraph g = workloads::fig1_splitjoin(2);
  exec::Session session(g, workloads::relay_kernels(g, 0.5, 3));
  Tracer tracer(1u << 14);
  const auto compiled = core::compile(g);
  exec::RunSpec spec;
  spec.mode = DummyMode::Propagation;
  spec.intervals = compiled.integer_intervals(core::Rounding::Floor);
  spec.forward_on_filter = compiled.forward_on_filter();
  spec.num_inputs = 50;
  spec.tracer = &tracer;
  ASSERT_TRUE(session.run(spec).completed);
  const auto events = tracer.snapshot();
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].tick, events[i].tick);
}

}  // namespace
}  // namespace sdaf::runtime
