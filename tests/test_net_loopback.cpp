// End-to-end loopback: a real net::Server on a Unix socket (own thread)
// driven by net::Client over the real wire. The core claim is the
// differential one -- payloads and verdicts over the wire are bit-identical
// to the same OpenFrame executed in-process -- plus the service-hardening
// claims: adversarial bytes error the connection without crashing or
// leaking streams, a wedged stream cannot stall the daemon past its push
// deadline, one connection multiplexes streams, and reopening a topology
// hits the compile cache.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/core/compile.h"
#include "src/exec/session.h"
#include "src/exec/stream.h"
#include "src/graph/io.h"
#include "src/net/client.h"
#include "src/net/frame.h"
#include "src/net/server.h"
#include "src/net/socket.h"
#include "src/net/workload.h"
#include "src/workloads/topologies.h"

namespace sdaf::net {
namespace {

using runtime::DummyMode;
using runtime::Value;

// One live daemon per fixture: bound to an abstract-enough path under
// /tmp, served from a background thread, stopped in the destructor.
class LoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions opt;
    opt.unix_path = "/tmp/sdaf_loopback_" +
                    std::to_string(::getpid()) + "_" +
                    ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name();
    opt.push_wait = std::chrono::milliseconds(100);
    configure(opt);
    server_ = std::make_unique<Server>(std::move(opt));
    ASSERT_TRUE(server_->start());
    thread_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    server_->request_stop();
    thread_.join();
  }

  // Subclass hook: adjust the daemon's options before it boots.
  virtual void configure(ServerOptions& opt) { (void)opt; }

  [[nodiscard]] Client connect() {
    auto c = Client::connect_unix(server_->unix_path());
    EXPECT_TRUE(c.has_value());
    return std::move(*c);
  }

  std::unique_ptr<Server> server_;
  std::thread thread_;
};

struct Delivered {
  std::vector<std::uint64_t> seqs;
  std::vector<std::int64_t> values;
};

// Runs `spec` in-process through the exact construction the server uses
// (net::make_kernels + the same StreamSpec mapping), pushing `inputs` and
// draining the single output; returns outputs + the final report.
std::pair<Delivered, exec::RunReport> run_in_process(
    const StreamGraph& g, const OpenFrame& spec,
    const std::vector<std::int64_t>& inputs) {
  exec::Session session(g, make_kernels(g, spec));
  exec::StreamSpec ss;
  ss.run.backend = static_cast<exec::Backend>(spec.backend);
  ss.run.mode = static_cast<DummyMode>(spec.mode);
  ss.run.batch = spec.batch;
  ss.run.pool_workers = 2;
  ss.feed_capacity = spec.feed_capacity;
  ss.egress_capacity = spec.egress_capacity;
  if (ss.run.mode != DummyMode::None) {
    core::CompileOptions copts;
    copts.algorithm = ss.run.mode == DummyMode::NonPropagation
                          ? core::Algorithm::NonPropagation
                          : core::Algorithm::Propagation;
    const auto compiled = core::compile(g, copts);
    EXPECT_TRUE(compiled.ok);
    ss.run.apply(compiled);
  }
  exec::Stream stream = session.open(ss);
  Delivered out;
  for (const std::int64_t v : inputs) {
    EXPECT_TRUE(stream.input(0).push(Value(v)));
    while (auto item = stream.output(0).poll()) {
      out.seqs.push_back(item->seq);
      out.values.push_back(item->value.as<std::int64_t>());
    }
  }
  stream.input(0).close();
  while (auto item = stream.output(0).next()) {
    out.seqs.push_back(item->seq);
    out.values.push_back(item->value.as<std::int64_t>());
  }
  return {std::move(out), stream.finish()};
}

// Same workload, but over the wire against the fixture's daemon.
std::pair<Delivered, exec::RunReport> run_over_wire(
    Client& client, std::uint16_t stream_id, const OpenFrame& spec,
    const std::vector<std::int64_t>& inputs) {
  ClientStream s = client.open(stream_id, spec);
  EXPECT_EQ(s.input_count(), 1u);
  EXPECT_EQ(s.output_count(), 1u);
  Delivered out;
  const auto drain = [&](bool until_ended) {
    for (;;) {
      const DeliverFrame d = s.poll(0, 128);
      for (const auto& item : d.items) {
        out.seqs.push_back(item.seq);
        out.values.push_back(item.value.as<std::int64_t>());
      }
      if (d.ended != 0) return true;
      if (d.items.empty() && !until_ended) return false;
      if (d.items.empty()) std::this_thread::yield();
    }
  };
  std::vector<Value> batch;
  for (const std::int64_t v : inputs) {
    batch.clear();
    batch.emplace_back(v);
    EXPECT_EQ(s.push(0, batch), 1u);
    drain(false);
  }
  s.close(0);
  drain(true);
  return {std::move(out), s.finish()};
}

void expect_same_report(const exec::RunReport& expected,
                        const exec::RunReport& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.deadlocked, actual.deadlocked) << label;
  ASSERT_EQ(expected.completed, actual.completed) << label;
  ASSERT_EQ(expected.sink_data, actual.sink_data) << label;
  ASSERT_EQ(expected.fires, actual.fires) << label;
  ASSERT_EQ(expected.edges.size(), actual.edges.size()) << label;
  for (std::size_t e = 0; e < expected.edges.size(); ++e) {
    EXPECT_EQ(expected.edges[e].data, actual.edges[e].data)
        << label << " edge " << e;
    EXPECT_EQ(expected.edges[e].dummies, actual.edges[e].dummies)
        << label << " edge " << e;
  }
}

// The tentpole differential: every backend, both avoidance modes, a
// filtering relay workload -- the wire run must reproduce the in-process
// run bit for bit, payloads and verdict alike.
TEST_F(LoopbackTest, WireRunBitIdenticalToInProcess) {
  const StreamGraph g = workloads::splitjoin(3, 2, 3);
  std::vector<std::int64_t> inputs;
  for (std::int64_t i = 0; i < 120; ++i) inputs.push_back(i * 3);

  Client client = connect();
  std::uint16_t next_id = 1;
  for (const std::uint8_t backend : {0, 1, 2}) {
    for (const std::uint8_t mode : {1, 2}) {
      OpenFrame spec;
      spec.backend = backend;
      spec.mode = mode;
      spec.kernel = KernelKind::Relay;
      spec.pass_rate = 0.55;
      spec.seed = 0xAB;
      spec.topology = to_text(g);
      const std::string label = "backend=" + std::to_string(backend) +
                                " mode=" + std::to_string(mode);

      auto [ref_out, ref_report] = run_in_process(g, spec, inputs);
      auto [wire_out, wire_report] =
          run_over_wire(client, next_id++, spec, inputs);

      expect_same_report(ref_report, wire_report, label);
      ASSERT_EQ(ref_out.seqs, wire_out.seqs) << label;
      ASSERT_EQ(ref_out.values, wire_out.values) << label;
    }
  }
}

// Exact deadlock certification crosses the wire intact: the Fig. 2 wedge
// with avoidance off deadlocks identically in-process and remotely, state
// dump included.
TEST_F(LoopbackTest, DeadlockVerdictCertifiedOverWire) {
  const StreamGraph g = workloads::fig2_triangle();
  OpenFrame spec;
  spec.backend = 2;  // Pooled: exact quiescence-based detection
  spec.mode = 0;     // avoidance off; the wedge is free to bite
  spec.kernel = KernelKind::Wedge;
  spec.wedge_prefix = 100;
  spec.topology = to_text(g);

  // In-process reference: push until backpressure wedges, then close.
  exec::Session session(g, make_kernels(g, spec));
  exec::StreamSpec ss;
  ss.run.backend = exec::Backend::Pooled;
  ss.run.mode = DummyMode::None;
  ss.run.pool_workers = 2;
  exec::Stream ref_stream = session.open(ss);
  for (int i = 0; i < 64; ++i) {
    if (ref_stream.input(0).try_push_for(Value(), std::chrono::milliseconds(
                                                      200)) !=
        exec::PortPushOutcome::Ok)
      break;
  }
  ref_stream.input(0).close();
  const exec::RunReport ref = ref_stream.finish();
  ASSERT_TRUE(ref.deadlocked);
  ASSERT_FALSE(ref.state_dump.empty());

  // Wire run: same pushes (the server's bounded push acks short once the
  // stream wedges), then Finish must certify the same deadlock.
  Client client = connect();
  ClientStream s = client.open(1, spec);
  std::size_t pushed = 0;
  while (pushed < 64) {
    const PushAckFrame ack = s.push_some(0, {Value()});
    pushed += ack.accepted;
    if (ack.accepted == 0 || ack.ended != 0) break;
  }
  s.close(0);
  const exec::RunReport wire = s.finish();
  EXPECT_TRUE(wire.deadlocked);
  EXPECT_FALSE(wire.completed);
  EXPECT_FALSE(wire.state_dump.empty());
}

// Adversarial bytes: a garbage frame earns an Error and a closed
// connection -- and the stream that connection had open is torn down, not
// leaked (streams_open returns to zero, the daemon keeps serving).
TEST_F(LoopbackTest, GarbageFrameErrorsConnectionWithoutLeakingStreams) {
  Client client = connect();
  OpenFrame spec;
  spec.topology = "node a\nnode b\nedge a b 4\n";
  ClientStream s = client.open(1, spec);
  EXPECT_EQ(s.push(0, {Value(std::int64_t{1})}), 1u);

  // Bypass the Client and write raw garbage on a second connection, after
  // opening a stream on it too.
  {
    Fd raw = net::connect_unix(server_->unix_path());
    ASSERT_TRUE(raw.valid());
    // A valid Hello first, so the garbage lands mid-protocol.
    Writer hw;
    encode(HelloFrame{}, hw);
    const auto hello = make_frame(FrameType::Hello, 0, std::move(hw));
    ASSERT_TRUE(send_all(raw, hello.data(), hello.size()));
    std::uint8_t reply[kHeaderSize];
    ASSERT_TRUE(recv_exact(raw, reply, kHeaderSize));  // HelloOk header
    const auto h = decode_header(reply);
    ASSERT_TRUE(h.has_value());
    std::vector<std::uint8_t> payload(h->length);
    ASSERT_TRUE(recv_exact(raw, payload.data(), payload.size()));

    const std::uint8_t garbage[] = {0xFF, 0xFF, 0xFF, 0xFF,
                                    0xFF, 0xFF, 0xFF, 0xFF};
    ASSERT_TRUE(send_all(raw, garbage, sizeof(garbage)));
    // The server answers Error (or just closes); either way the socket
    // reaches EOF rather than hanging.
    std::uint8_t drainbuf[256];
    while (recv_exact(raw, drainbuf, 1)) {
    }
  }

  // The daemon is still alive and still serving the first connection.
  EXPECT_EQ(s.push(0, {Value(std::int64_t{2})}), 1u);
  s.close(0);
  const exec::RunReport report = s.finish();
  EXPECT_TRUE(report.completed);

  // Both the garbage connection's stream (it never opened one) and the
  // finished stream are gone; errors were counted.
  for (int i = 0; i < 100; ++i) {  // the teardown is asynchronous
    if (server_->stats().streams_open == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const ServiceStats stats = server_->stats();
  EXPECT_EQ(stats.streams_open, 0u);
  EXPECT_GE(stats.errors_total, 1u);
}

// Same but nastier: random bytes straight onto the socket, no Hello. The
// server must error/close every time and keep serving.
TEST_F(LoopbackTest, RandomBytesNeverKillTheDaemon) {
  std::uint64_t state = 0x12345678;
  const auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint8_t>(state >> 33);
  };
  for (int trial = 0; trial < 20; ++trial) {
    Fd raw = net::connect_unix(server_->unix_path());
    ASSERT_TRUE(raw.valid());
    std::vector<std::uint8_t> junk(1 + trial * 13);
    for (auto& b : junk) b = next();
    (void)send_all(raw, junk.data(), junk.size());
    // Drop the connection without waiting: junk that happens to decode as
    // a valid header makes the server (correctly) wait for the payload, so
    // reading until EOF here would deadlock the test, not the daemon. The
    // liveness check below is the actual assertion.
  }
  // Still serving.
  Client client = connect();
  OpenFrame spec;
  spec.topology = "node a\nnode b\nedge a b 4\n";
  ClientStream s = client.open(1, spec);
  EXPECT_EQ(s.push(0, {Value(std::int64_t{7})}), 1u);
  s.close(0);
  EXPECT_TRUE(s.finish().completed);
}

// The no-wedge-past-deadline acceptance criterion: a stream that has
// wedged itself (avoidance off) makes PushBatch come back as a *short ack
// within the server's push_wait bound*, and a healthy stream on another
// connection keeps flowing at full speed the whole time.
TEST_F(LoopbackTest, WedgedStreamCannotStallTheDaemonPastItsDeadline) {
  Client wedged = connect();
  OpenFrame wspec;
  wspec.backend = 2;
  wspec.mode = 0;
  wspec.kernel = KernelKind::Wedge;
  wspec.wedge_prefix = 1000;
  wspec.feed_capacity = 4;  // wedges after a handful of pushes
  wspec.topology = to_text(workloads::fig2_triangle());
  ClientStream ws = wedged.open(1, wspec);

  Client healthy = connect();
  OpenFrame hspec;
  hspec.topology = "node a\nnode b\nedge a b 8\n";
  ClientStream hs = healthy.open(1, hspec);

  // Feed the wedge until it stops accepting. Every round trip -- including
  // the ones that time out server-side -- must return within push_wait
  // (100ms here) plus generous scheduling slack.
  std::vector<Value> one = {Value()};
  bool saw_short_ack = false;
  for (int i = 0; i < 40 && !saw_short_ack; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const PushAckFrame ack = ws.push_some(0, one);
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_LT(elapsed, std::chrono::milliseconds(2000));
    if (ack.accepted == 0) saw_short_ack = true;
  }
  EXPECT_TRUE(saw_short_ack) << "the wedge never bit; test is vacuous";
  EXPECT_GE(server_->stats().push_timeouts_total, 1u);

  // The healthy stream was never starved: a full push/poll cycle completes
  // while the wedged stream is still sitting there blocked.
  for (std::int64_t i = 0; i < 50; ++i)
    EXPECT_EQ(hs.push(0, {Value(i)}), 1u);
  hs.close(0);
  std::size_t got = 0;
  for (;;) {
    const DeliverFrame d = hs.poll(0, 64);
    got += d.items.size();
    if (d.ended != 0) break;
  }
  EXPECT_EQ(got, 50u);
  EXPECT_TRUE(hs.finish().completed);

  // The wedged stream still certifies its deadlock on demand.
  ws.close(0);
  const exec::RunReport report = ws.finish();
  EXPECT_TRUE(report.deadlocked);
  EXPECT_FALSE(report.state_dump.empty());
}

// One connection, several concurrent streams, interleaved traffic.
TEST_F(LoopbackTest, MultipleStreamsMultiplexOneConnection) {
  Client client = connect();
  OpenFrame spec;
  spec.topology = "node a\nnode b\nedge a b 8\n";
  ClientStream s1 = client.open(1, spec);
  ClientStream s2 = client.open(2, spec);

  for (std::int64_t i = 0; i < 32; ++i) {
    EXPECT_EQ(s1.push(0, {Value(i)}), 1u);
    EXPECT_EQ(s2.push(0, {Value(i * 100)}), 1u);
  }
  s1.close(0);
  s2.close(0);
  const auto drain = [](ClientStream& s) {
    std::vector<std::int64_t> got;
    for (;;) {
      const DeliverFrame d = s.poll(0, 64);
      for (const auto& item : d.items)
        got.push_back(item.value.as<std::int64_t>());
      if (d.ended != 0) break;
    }
    return got;
  };
  const auto got1 = drain(s1);
  const auto got2 = drain(s2);
  ASSERT_EQ(got1.size(), 32u);
  ASSERT_EQ(got2.size(), 32u);
  for (std::int64_t i = 0; i < 32; ++i) {
    EXPECT_EQ(got1[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(got2[static_cast<std::size_t>(i)], i * 100);
  }
  EXPECT_TRUE(s1.finish().completed);
  EXPECT_TRUE(s2.finish().completed);

  // Reusing a live id is a protocol error.
  ClientStream s3 = client.open(3, spec);
  EXPECT_THROW((void)client.open(3, spec), ProtocolError);
}

// Opening the same topology twice hits the shared compile cache, and the
// OpenOk says so.
TEST_F(LoopbackTest, ReopeningTopologyHitsCompileCache) {
  Client client = connect();
  OpenFrame spec;
  spec.mode = 1;  // must compile for the cache to be consulted
  spec.topology = to_text(workloads::splitjoin(2, 2, 2));
  ClientStream s1 = client.open(1, spec);
  ClientStream s2 = client.open(2, spec);
  EXPECT_EQ(s2.cache_hit(), true);
  EXPECT_GE(server_->stats().compile_cache_hits_total, 1u);
  s1.close(0);
  s2.close(0);
  EXPECT_TRUE(s1.finish().completed);
  EXPECT_TRUE(s2.finish().completed);
}

// The Stats page: one merged Prometheus exposition with both per-stream
// sdaf_* families and the daemon's sdafd_* families, well-formed enough
// for tools/check_prom.sh (one TYPE per family, counters end _total).
TEST_F(LoopbackTest, StatsPageMergesStreamsAndServiceFamilies) {
  Client client = connect();
  OpenFrame spec;
  spec.tenant = "alpha";
  spec.topology = "node a\nnode b\nedge a b 4\n";
  ClientStream s1 = client.open(1, spec);
  ClientStream s2 = client.open(2, spec);
  EXPECT_EQ(s1.push(0, {Value(std::int64_t{1})}), 1u);
  EXPECT_EQ(s2.push(0, {Value(std::int64_t{2})}), 1u);

  const std::string page = client.stats();
  EXPECT_NE(page.find("# TYPE sdafd_connections_total counter"),
            std::string::npos);
  EXPECT_NE(page.find("sdafd_streams_open"), std::string::npos);
  EXPECT_NE(page.find("sdafd_frames_total"), std::string::npos);
  // Two live streams of the same tenant must surface as distinct series
  // under ONE type header per family.
  EXPECT_NE(page.find("tenant=\"alpha/"), std::string::npos);
  const auto count_type = [&page](const std::string& family) {
    const std::string needle = "# TYPE " + family + " ";
    std::size_t n = 0;
    for (std::size_t pos = page.find(needle); pos != std::string::npos;
         pos = page.find(needle, pos + 1))
      ++n;
    return n;
  };
  EXPECT_EQ(count_type("sdaf_node_fires_total"), 1u);
  EXPECT_EQ(count_type("sdafd_connections_total"), 1u);

  s1.close(0);
  s2.close(0);
  (void)s1.finish();
  (void)s2.finish();
}

// Fixture with a tight admission budget: at most 2 nodes across all
// admitted streams, so any 3-node topology is over budget by construction.
class AdmissionLoopbackTest : public LoopbackTest {
 protected:
  void configure(ServerOptions& opt) override { opt.budgets.max_nodes = 2; }
};

// The admission rejection round trip (qos): an over-budget Open comes back
// as a typed OpenRejectedError carrying the reason and the cost model's
// prediction, the rejection is SOFT -- the same connection then opens an
// in-budget stream and runs it to completion -- and the refusal is counted
// in the daemon's Prometheus page.
TEST_F(AdmissionLoopbackTest, OverBudgetOpenRejectedSoftlyWithPredictedCost) {
  Client client = connect();
  OpenFrame big;
  big.topology = to_text(workloads::fig2_triangle());  // 3 nodes: over budget
  bool rejected = false;
  try {
    (void)client.open(1, big);
  } catch (const OpenRejectedError& e) {
    rejected = true;
    EXPECT_NE(std::string(e.what()).find("nodes"), std::string::npos);
    EXPECT_EQ(e.predicted().nodes, 3u);
    EXPECT_GT(e.predicted().channel_slots, 0u);
    EXPECT_GT(e.predicted().channel_bytes, 0u);
  }
  ASSERT_TRUE(rejected);

  // Soft refusal: the connection survives, the id stays free, and an
  // in-budget open on the very same connection and id runs normally.
  OpenFrame small;
  small.topology = "node a\nnode b\nedge a b 4\n";
  ClientStream s = client.open(1, small);
  EXPECT_EQ(s.push(0, {Value(std::int64_t{9})}), 1u);
  s.close(0);
  EXPECT_TRUE(s.finish().completed);

  // The refusal (and the admit) surface on the Stats page.
  const std::string page = client.stats();
  EXPECT_NE(page.find("sdaf_admission_rejected_total 1"), std::string::npos);
  EXPECT_NE(page.find("sdaf_admission_admitted_total 1"), std::string::npos);
}

// Graceful drain: after request_drain, new Opens are refused (Draining)
// but an in-flight stream finishes cleanly within the grace window.
TEST_F(LoopbackTest, DrainRefusesNewStreamsButFinishesLiveOnes) {
  Client client = connect();
  OpenFrame spec;
  spec.topology = "node a\nnode b\nedge a b 4\n";
  ClientStream s = client.open(1, spec);
  EXPECT_EQ(s.push(0, {Value(std::int64_t{5})}), 1u);

  server_->request_drain();
  EXPECT_THROW((void)client.open(2, spec), ProtocolError);

  s.close(0);
  const exec::RunReport report = s.finish();
  EXPECT_TRUE(report.completed);
}

}  // namespace
}  // namespace sdaf::net
