// End-to-end properties: compile -> run across random topologies, filter
// rates and buffer sizes. The paper's central safety claim -- computed
// intervals make filtering executions deadlock-free -- is stress-tested on
// the deterministic simulator (hundreds of configurations) and spot-checked
// on the threaded executor.
#include <gtest/gtest.h>

#include "src/core/compile.h"
#include "src/graph/normalize.h"
#include "src/exec/session.h"
#include "src/support/prng.h"
#include "src/workloads/filters.h"
#include "src/workloads/random_ladder.h"
#include "src/workloads/random_sp.h"
#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

using runtime::DummyMode;

exec::RunReport run_sim(const StreamGraph& g, DummyMode mode,
                        const std::vector<std::int64_t>& intervals, double p,
                        std::uint64_t seed, std::uint64_t n = 400,
                        std::vector<std::uint8_t> forward = {}) {
  exec::Session session(g, workloads::relay_kernels(g, p, seed));
  exec::RunSpec spec;
  spec.backend = exec::Backend::Sim;
  spec.mode = mode;
  spec.intervals = intervals;
  spec.forward_on_filter = std::move(forward);
  spec.num_inputs = n;
  return session.run(spec);
}

class SafetySweep : public ::testing::TestWithParam<std::uint64_t> {};

// Propagation Algorithm end-to-end on random CS4 chains.
TEST_P(SafetySweep, PropagationNeverDeadlocksOnCs4) {
  const std::uint64_t seed = GetParam();
  Prng rng(seed * 7211 + 3);
  workloads::RandomCs4Options gopt;
  gopt.components = 1 + seed % 3;
  gopt.ladder.rungs = 1 + seed % 3;
  gopt.sp.target_edges = 5;
  gopt.sp.max_buffer = 4;
  gopt.ladder.max_buffer = 4;
  const auto g = workloads::random_cs4_chain(rng, gopt);
  const auto compiled = core::compile(g);
  ASSERT_TRUE(compiled.ok) << compiled.diagnostics;
  const auto intervals =
      compiled.integer_intervals(core::Rounding::Floor);
  for (const double p : {0.15, 0.5, 0.85}) {
    const auto r = run_sim(g, DummyMode::Propagation, intervals, p,
                           seed * 31 + 1, 400, compiled.forward_on_filter());
    EXPECT_TRUE(r.completed)
        << "deadlock at p=" << p << " seed=" << seed;
  }
}

TEST_P(SafetySweep, NonPropagationNeverDeadlocksOnCs4) {
  const std::uint64_t seed = GetParam();
  Prng rng(seed * 911 + 5);
  workloads::RandomCs4Options gopt;
  gopt.components = 1 + seed % 2;
  gopt.ladder.rungs = 1 + seed % 3;
  const auto g = workloads::random_cs4_chain(rng, gopt);
  core::CompileOptions copt;
  copt.algorithm = core::Algorithm::NonPropagation;
  const auto compiled = core::compile(g, copt);
  ASSERT_TRUE(compiled.ok);
  const auto intervals =
      compiled.integer_intervals(core::Rounding::Floor);
  for (const double p : {0.2, 0.6}) {
    const auto r =
        run_sim(g, DummyMode::NonPropagation, intervals, p, seed * 17 + 9);
    EXPECT_TRUE(r.completed)
        << "deadlock at p=" << p << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafetySweep,
                         ::testing::Range<std::uint64_t>(0, 30));

// The paper's roundup (ceil) materialization, exercised on the same sweep.
// EXPERIMENTS.md records whether ceil ever admits a deadlock that floor
// avoids.
class RoundingSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundingSweep, PaperCeilAlsoSafeOnSweep) {
  const std::uint64_t seed = GetParam();
  Prng rng(seed * 5099 + 7);
  workloads::RandomLadderOptions gopt;
  gopt.rungs = 1 + seed % 3;
  gopt.max_buffer = 5;
  const auto g = workloads::random_ladder(rng, gopt);
  core::CompileOptions copt;
  copt.algorithm = core::Algorithm::NonPropagation;
  const auto compiled = core::compile(g, copt);
  ASSERT_TRUE(compiled.ok);
  const auto r = run_sim(g, DummyMode::NonPropagation,
                         compiled.integer_intervals(core::Rounding::PaperCeil),
                         0.3, seed);
  EXPECT_TRUE(r.completed) << "paper-ceil deadlocked, seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundingSweep,
                         ::testing::Range<std::uint64_t>(0, 25));

// Aggressive adversarial filtering on tiny buffers: every split node
// filters one branch entirely for a long prefix.
TEST(Integration, AdversarialSplitJoinSurvives) {
  for (const std::int64_t buffer : {1, 2, 4}) {
    const StreamGraph g = workloads::fig1_splitjoin(buffer);
    const auto compiled = core::compile(g);
    ASSERT_TRUE(compiled.ok);
    std::vector<std::shared_ptr<runtime::Kernel>> kernels;
    kernels.push_back(std::make_shared<runtime::RelayKernel>(
        workloads::adversarial_prefix_filter(1, 500)));
    kernels.push_back(runtime::pass_through_kernel());
    kernels.push_back(runtime::pass_through_kernel());
    kernels.push_back(runtime::pass_through_kernel());
    exec::Session session(g, kernels);
    exec::RunSpec spec;
    spec.mode = DummyMode::Propagation;
    spec.intervals = compiled.integer_intervals(core::Rounding::Floor);
    spec.forward_on_filter = compiled.forward_on_filter();
    spec.num_inputs = 600;
    const auto r = session.run(spec);
    EXPECT_TRUE(r.completed) << "buffer=" << buffer;
    EXPECT_EQ(r.sink_data[3] - r.fires[3],
              r.sink_data[3] - r.fires[3]);  // sanity; alignment consumed
  }
}

// Without dummy messages the same adversarial workloads deadlock -- the
// avoidance machinery is actually necessary, not vacuous.
TEST(Integration, SameWorkloadsDeadlockWithoutAvoidance) {
  const StreamGraph g = workloads::fig1_splitjoin(2);
  std::vector<std::shared_ptr<runtime::Kernel>> kernels;
  kernels.push_back(std::make_shared<runtime::RelayKernel>(
      workloads::adversarial_prefix_filter(1, 500)));
  kernels.push_back(runtime::pass_through_kernel());
  kernels.push_back(runtime::pass_through_kernel());
  kernels.push_back(runtime::pass_through_kernel());
  exec::Session session(g, kernels);
  exec::RunSpec spec;
  spec.mode = DummyMode::None;
  spec.num_inputs = 600;
  EXPECT_TRUE(session.run(spec).deadlocked);
}

// Deadlock frequency under Bernoulli filtering with no avoidance rises as
// buffers shrink; with avoidance it is identically zero.
TEST(Integration, AvoidanceEliminatesAllBernoulliDeadlocks) {
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  const auto compiled = core::compile(g);
  const auto intervals = compiled.integer_intervals(core::Rounding::Floor);
  int unprotected_deadlocks = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const auto bare =
        run_sim(g, DummyMode::None, {}, 0.5, seed, 300);
    unprotected_deadlocks += bare.deadlocked ? 1 : 0;
    const auto guarded =
        run_sim(g, DummyMode::Propagation, intervals, 0.5, seed, 300,
                compiled.forward_on_filter());
    EXPECT_TRUE(guarded.completed) << "seed " << seed;
  }
  EXPECT_GT(unprotected_deadlocks, 0)
      << "sweep too easy: no unprotected run deadlocked";
}

// The general-DAG path end to end: the butterfly is outside CS4, so the
// compiler falls back to exponential enumeration -- and those intervals
// plus the continuation-forwarding set must keep the runtime safe too.
TEST(Integration, ButterflyViaExponentialFallbackIsSafe) {
  const StreamGraph g = workloads::fig4_butterfly(2);
  const auto compiled = core::compile(g);
  ASSERT_TRUE(compiled.ok);
  ASSERT_EQ(compiled.classification, core::Classification::GeneralDag);
  const auto intervals = compiled.integer_intervals(core::Rounding::Floor);
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    for (const double p : {0.2, 0.5, 0.8}) {
      const auto guarded =
          run_sim(g, DummyMode::Propagation, intervals, p, seed, 300,
                  compiled.forward_on_filter());
      EXPECT_TRUE(guarded.completed) << "seed=" << seed << " p=" << p;
    }
  }
  // And the same workload does wedge without protection for some seed.
  int bare_deadlocks = 0;
  for (std::uint64_t seed = 0; seed < 25; ++seed)
    bare_deadlocks +=
        run_sim(g, DummyMode::None, {}, 0.5, seed, 300).deadlocked ? 1 : 0;
  EXPECT_GT(bare_deadlocks, 0);
}

// Multi-source applications: compile the terminal-normalized wrapper, map
// the configuration back to the original edges, and run the *original*
// graph. The coordination constraint between sibling sources must appear
// as forwarding on their out-edges and keep the join alive.
TEST(Integration, MultiSourceJoinViaNormalization) {
  StreamGraph g;
  const NodeId s1 = g.add_node("s1");
  const NodeId s2 = g.add_node("s2");
  const NodeId j = g.add_node("j");
  const NodeId t = g.add_node("t");
  const EdgeId e1 = g.add_edge(s1, j, 2);
  g.add_edge(s2, j, 2);
  g.add_edge(j, t, 2);

  const auto wrapped = normalize_two_terminal(g);
  const auto compiled = core::compile(wrapped.graph);
  ASSERT_TRUE(compiled.ok);

  // Map intervals / forwarding back onto the original edge ids.
  std::vector<std::int64_t> intervals(g.edge_count(),
                                      runtime::kInfiniteInterval);
  std::vector<std::uint8_t> forward(g.edge_count(), 0);
  const auto wrapped_ints =
      compiled.integer_intervals(core::Rounding::Floor);
  for (EdgeId we = 0; we < wrapped.graph.edge_count(); ++we) {
    if (wrapped.orig_edge[we] == kNoEdge) continue;
    intervals[wrapped.orig_edge[we]] = wrapped_ints[we];
    forward[wrapped.orig_edge[we]] = compiled.forward_on_filter()[we];
  }
  ASSERT_EQ(forward[e1], 1);  // sources must forward while filtering

  // s1 filters everything; a sibling source cannot be *deadlocked* by this
  // (no finite cycle backs up into a source), but without forwarding the
  // join is starved until s1's EOS: s2's stream sits in a full channel for
  // the entire run. With forwarding, s2's items flow promptly.
  const auto make_kernels = [] {
    std::vector<std::shared_ptr<runtime::Kernel>> kernels;
    kernels.push_back(std::make_shared<runtime::RelayKernel>(
        workloads::adversarial_prefix_filter(0, 1u << 20)));
    kernels.push_back(runtime::pass_through_kernel());
    kernels.push_back(runtime::pass_through_kernel());
    kernels.push_back(runtime::pass_through_kernel());
    return kernels;
  };
  {
    exec::Session session(g, make_kernels());
    exec::RunSpec spec;
    spec.mode = DummyMode::Propagation;
    spec.intervals = intervals;
    spec.forward_on_filter = forward;
    spec.num_inputs = 500;
    const auto r = session.run(spec);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.sink_data[t], 500u);     // s2's stream arrived in full
    EXPECT_GT(r.edges[e1].dummies, 0u);  // s1 forwarded knowledge
    // The join kept pace: s2's channel never stayed pinned at capacity...
    // completion with steady dummy flow is the observable guarantee here;
    // the starvation contrast is below.
  }
  {
    exec::Session session(g, make_kernels());
    exec::RunSpec spec;
    spec.mode = DummyMode::None;
    spec.num_inputs = 500;
    const auto r = session.run(spec);
    // No deadlock -- but starvation: the join consumed nothing until EOS,
    // which shows up as s2's channel saturating at full capacity.
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.edges[1].max_occupancy, g.edge(1).buffer);
  }
}

// Threaded executor spot-check of the same property (kept small: the
// machine may have a single core).
TEST(Integration, ThreadedExecutorAgreesOnSafety) {
  const StreamGraph g = workloads::fig5_ladder(2);
  const auto compiled = core::compile(g);
  ASSERT_TRUE(compiled.ok);
  exec::Session session(g, workloads::relay_kernels(g, 0.4, 11));
  exec::RunSpec spec;
  spec.backend = exec::Backend::Threaded;
  spec.mode = DummyMode::Propagation;
  spec.intervals = compiled.integer_intervals(core::Rounding::Floor);
  spec.forward_on_filter = compiled.forward_on_filter();
  spec.num_inputs = 200;
  const auto r = session.run(spec);
  EXPECT_TRUE(r.completed);
}

// Dummy traffic comparison: Non-Propagation sends on more edges (every
// cycle edge), Propagation sends on fewer but forwards. Both must deliver
// identical data counts.
TEST(Integration, AlgorithmsDeliverSameData) {
  const StreamGraph g = workloads::fig4_left(3);
  core::CompileOptions popt;
  const auto prop = core::compile(g, popt);
  core::CompileOptions nopt;
  nopt.algorithm = core::Algorithm::NonPropagation;
  const auto nonprop = core::compile(g, nopt);
  const auto rp = run_sim(g, DummyMode::Propagation,
                          prop.integer_intervals(core::Rounding::Floor), 0.5,
                          99, 400, prop.forward_on_filter());
  const auto rn = run_sim(g, DummyMode::NonPropagation,
                          nonprop.integer_intervals(core::Rounding::Floor),
                          0.5, 99);
  ASSERT_TRUE(rp.completed);
  ASSERT_TRUE(rn.completed);
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    EXPECT_EQ(rp.edges[e].data, rn.edges[e].data) << "edge " << e;
}

}  // namespace
}  // namespace sdaf
