#include "src/runtime/channel.h"

#include <gtest/gtest.h>

#include <thread>

namespace sdaf::runtime {
namespace {

TEST(Channel, FifoOrder) {
  BoundedChannel ch(4, nullptr);
  ASSERT_TRUE(ch.push(Message::data(0, Value(1))));
  ASSERT_TRUE(ch.push(Message::dummy(1)));
  ASSERT_TRUE(ch.push(Message::data(2, Value(3))));
  auto m = ch.peek_wait();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->seq, 0u);
  ch.pop();
  m = ch.peek_wait();
  EXPECT_EQ(m->kind, MessageKind::Dummy);
  ch.pop();
  m = ch.peek_wait();
  EXPECT_EQ(m->seq, 2u);
}

TEST(Channel, PeekDoesNotConsume) {
  BoundedChannel ch(2, nullptr);
  ASSERT_TRUE(ch.push(Message::data(7, Value(0))));
  EXPECT_EQ(ch.peek_wait()->seq, 7u);
  EXPECT_EQ(ch.peek_wait()->seq, 7u);
}

TEST(Channel, StatsCountKinds) {
  BoundedChannel ch(8, nullptr);
  ASSERT_TRUE(ch.push(Message::data(0, Value(0))));
  ASSERT_TRUE(ch.push(Message::data(1, Value(0))));
  ASSERT_TRUE(ch.push(Message::dummy(2)));
  ASSERT_TRUE(ch.push(Message::eos()));
  const auto s = ch.stats();
  EXPECT_EQ(s.data_pushed, 2u);
  EXPECT_EQ(s.dummies_pushed, 1u);
  EXPECT_EQ(s.max_occupancy, 4);
}

TEST(Channel, BlocksWhenFullUntilPop) {
  BoundedChannel ch(1, nullptr);
  ASSERT_TRUE(ch.push(Message::data(0, Value(0))));
  std::thread producer([&] {
    // Blocks until the consumer pops.
    EXPECT_TRUE(ch.push(Message::data(1, Value(0))));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.pop();
  producer.join();
  EXPECT_EQ(ch.peek_wait()->seq, 1u);
}

TEST(Channel, BlocksWhenEmptyUntilPush) {
  BoundedChannel ch(1, nullptr);
  std::uint64_t got = 99;
  std::thread consumer([&] {
    const auto m = ch.peek_wait();
    ASSERT_TRUE(m.has_value());
    got = m->seq;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(ch.push(Message::data(5, Value(0))));
  consumer.join();
  EXPECT_EQ(got, 5u);
}

TEST(Channel, AbortReleasesBlockedProducer) {
  BoundedChannel ch(1, nullptr);
  ASSERT_TRUE(ch.push(Message::data(0, Value(0))));
  std::thread producer([&] {
    EXPECT_FALSE(ch.push(Message::data(1, Value(0))));  // aborted
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.abort();
  producer.join();
  EXPECT_TRUE(ch.aborted());
}

TEST(Channel, AbortReleasesBlockedConsumer) {
  BoundedChannel ch(1, nullptr);
  std::thread consumer([&] {
    EXPECT_FALSE(ch.peek_wait().has_value());  // aborted while empty
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.abort();
  consumer.join();
}

TEST(Channel, MonitorSeesBlockedStates) {
  RuntimeMonitor monitor;
  BoundedChannel ch(1, &monitor);
  monitor.thread_started();
  ASSERT_TRUE(ch.push(Message::data(0, Value(0))));
  std::thread producer([&] { (void)ch.push(Message::data(1, Value(0))); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(monitor.blocked(), 1);
  const auto progress_before = monitor.progress();
  ch.pop();
  producer.join();
  EXPECT_EQ(monitor.blocked(), 0);
  EXPECT_GT(monitor.progress(), progress_before);
}

TEST(Watchdog, FiresOnAllBlocked) {
  RuntimeMonitor monitor;
  monitor.thread_started();
  monitor.enter_blocked();  // simulate a single permanently-blocked thread
  std::atomic<bool> stop{false};
  bool aborted = false;
  const bool deadlocked = run_watchdog(
      monitor, stop, WatchdogOptions{std::chrono::milliseconds(1), 5},
      [&] { aborted = true; });
  EXPECT_TRUE(deadlocked);
  EXPECT_TRUE(aborted);
}

TEST(Watchdog, StopsCleanlyWithoutDeadlock) {
  RuntimeMonitor monitor;
  std::atomic<bool> stop{false};
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stop = true;
  });
  const bool deadlocked = run_watchdog(
      monitor, stop, WatchdogOptions{std::chrono::milliseconds(1), 5},
      [] { FAIL() << "no deadlock expected"; });
  stopper.join();
  EXPECT_FALSE(deadlocked);
}

TEST(Watchdog, ProgressSuppressesFalsePositive) {
  RuntimeMonitor monitor;
  monitor.thread_started();
  monitor.enter_blocked();
  std::atomic<bool> stop{false};
  // A background thread keeps making progress; the watchdog must not fire.
  std::thread worker([&] {
    for (int i = 0; i < 50; ++i) {
      monitor.note_progress();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    stop = true;
  });
  const bool deadlocked = run_watchdog(
      monitor, stop, WatchdogOptions{std::chrono::milliseconds(2), 8},
      [] { FAIL() << "progress should prevent deadlock"; });
  worker.join();
  EXPECT_FALSE(deadlocked);
}

}  // namespace
}  // namespace sdaf::runtime
