#include "src/runtime/channel.h"

#include <gtest/gtest.h>

#include <thread>

namespace sdaf::runtime {
namespace {

TEST(Channel, FifoOrder) {
  BoundedChannel ch(4, nullptr);
  ASSERT_TRUE(ch.push(Message::data(0, Value(1))));
  ASSERT_TRUE(ch.push(Message::dummy(1)));
  ASSERT_TRUE(ch.push(Message::data(2, Value(3))));
  auto m = ch.peek_head_wait();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->seq, 0u);
  (void)ch.pop();
  m = ch.peek_head_wait();
  EXPECT_EQ(m->kind, MessageKind::Dummy);
  (void)ch.pop();
  m = ch.peek_head_wait();
  EXPECT_EQ(m->seq, 2u);
}

TEST(Channel, PeekDoesNotConsume) {
  BoundedChannel ch(2, nullptr);
  ASSERT_TRUE(ch.push(Message::data(7, Value(0))));
  EXPECT_EQ(ch.peek_head_wait()->seq, 7u);
  EXPECT_EQ(ch.peek_head_wait()->seq, 7u);
  EXPECT_EQ(ch.try_peek()->seq, 7u);  // full-message peek agrees
}

TEST(Channel, StatsCountKinds) {
  BoundedChannel ch(8, nullptr);
  ASSERT_TRUE(ch.push(Message::data(0, Value(0))));
  ASSERT_TRUE(ch.push(Message::data(1, Value(0))));
  ASSERT_TRUE(ch.push(Message::dummy(2)));
  ASSERT_TRUE(ch.push(Message::eos()));
  const auto s = ch.stats();
  EXPECT_EQ(s.data_pushed, 2u);
  EXPECT_EQ(s.dummies_pushed, 1u);
  EXPECT_EQ(s.max_occupancy, 4);
}

TEST(Channel, PopHeadMovesPayloadInOneCall) {
  BoundedChannel ch(2, nullptr);
  ASSERT_TRUE(ch.push(Message::data(3, Value(std::int64_t{42}))));
  bool was_full = true;
  const Message m = ch.pop_head(&was_full);
  EXPECT_EQ(m.seq, 3u);
  EXPECT_EQ(m.kind, MessageKind::Data);
  EXPECT_EQ(m.payload.as<std::int64_t>(), 42);
  EXPECT_FALSE(was_full);
  EXPECT_TRUE(ch.empty());
}

// --- dummy run coalescing ---------------------------------------------

TEST(Channel, ConsecutiveDummiesCoalesceButCountFully) {
  // A run of k consecutive dummies is one physical segment but k logical
  // messages: occupancy, capacity and the stats all see k.
  BoundedChannel ch(4, nullptr);
  for (std::uint64_t s = 0; s < 4; ++s)
    ASSERT_EQ(ch.try_push(Message::dummy(s)), PushResult::Ok);
  EXPECT_EQ(ch.size(), 4u);
  EXPECT_TRUE(ch.full());
  EXPECT_EQ(ch.stats().dummies_pushed, 4u);
  EXPECT_EQ(ch.stats().max_occupancy, 4);
  const auto head = ch.try_peek_head();
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->seq, 0u);
  EXPECT_EQ(head->kind, MessageKind::Dummy);
  EXPECT_EQ(head->run, 4u);
  // A fifth dummy does not fit: coalescing does not create buffer space.
  EXPECT_EQ(ch.try_push(Message::dummy(4)), PushResult::Full);
}

TEST(Channel, BatchPushAcceptsExactlyFreeSpace) {
  BoundedChannel ch(4, nullptr);
  ASSERT_TRUE(ch.push(Message::data(0, Value(1))));
  bool was_empty = true;
  bool aborted = true;
  EXPECT_EQ(ch.try_push_dummies(1, 10, &was_empty, &aborted), 3u);
  EXPECT_FALSE(was_empty);
  EXPECT_FALSE(aborted);
  EXPECT_TRUE(ch.full());
  EXPECT_EQ(ch.stats().dummies_pushed, 3u);
  EXPECT_EQ(ch.try_push_dummies(4, 5), 0u);  // full: nothing accepted
}

TEST(Channel, InterleavedDataDummyDataPopsInOrder) {
  BoundedChannel ch(8, nullptr);
  ASSERT_TRUE(ch.push(Message::data(0, Value(std::int64_t{10}))));
  ASSERT_TRUE(ch.push(Message::dummy(1)));
  ASSERT_TRUE(ch.push(Message::dummy(2)));
  ASSERT_TRUE(ch.push(Message::data(3, Value(std::int64_t{30}))));
  ASSERT_TRUE(ch.push(Message::dummy(4)));
  EXPECT_EQ(ch.size(), 5u);

  EXPECT_EQ(ch.pop_head().payload.as<std::int64_t>(), 10);
  auto head = ch.try_peek_head();
  EXPECT_EQ(head->seq, 1u);
  EXPECT_EQ(head->run, 2u);  // the 1,2 run coalesced behind the data
  const auto run = ch.pop_dummies(2);
  EXPECT_EQ(run.popped, 2u);
  EXPECT_EQ(ch.pop_head().payload.as<std::int64_t>(), 30);
  head = ch.try_peek_head();
  EXPECT_EQ(head->seq, 4u);
  EXPECT_EQ(head->run, 1u);  // seq 4 did not merge across the data message
}

TEST(Channel, NonConsecutiveDummiesStaySeparate) {
  BoundedChannel ch(4, nullptr);
  ASSERT_TRUE(ch.push(Message::dummy(1)));
  ASSERT_TRUE(ch.push(Message::dummy(5)));  // gap: upstream filtered 2..4
  auto head = ch.try_peek_head();
  EXPECT_EQ(head->seq, 1u);
  EXPECT_EQ(head->run, 1u);
  // pop_dummies never crosses into the next segment.
  EXPECT_EQ(ch.pop_dummies(2).popped, 1u);
  head = ch.try_peek_head();
  EXPECT_EQ(head->seq, 5u);
}

TEST(Channel, EosArrivingMidRunStaysOrdered) {
  BoundedChannel ch(8, nullptr);
  EXPECT_EQ(ch.try_push_dummies(7, 3), 3u);
  ASSERT_TRUE(ch.push(Message::eos()));
  EXPECT_EQ(ch.size(), 4u);
  auto head = ch.try_peek_head();
  EXPECT_EQ(head->kind, MessageKind::Dummy);
  EXPECT_EQ(head->run, 3u);
  EXPECT_EQ(ch.pop_dummies(3).popped, 3u);
  head = ch.try_peek_head();
  EXPECT_EQ(head->kind, MessageKind::Eos);
  EXPECT_EQ(head->run, 1u);  // EOS never merges into a run
  EXPECT_EQ(ch.pop_head().kind, MessageKind::Eos);
  EXPECT_TRUE(ch.empty());
}

TEST(Channel, PartialRunPopKeepsSequenceNumbers) {
  BoundedChannel ch(8, nullptr);
  EXPECT_EQ(ch.try_push_dummies(10, 5), 5u);
  EXPECT_EQ(ch.pop_dummies(2).popped, 2u);
  auto head = ch.try_peek_head();
  EXPECT_EQ(head->seq, 12u);
  EXPECT_EQ(head->run, 3u);
  // pop_head materializes one dummy of the run at a time.
  const Message m = ch.pop_head();
  EXPECT_EQ(m.kind, MessageKind::Dummy);
  EXPECT_EQ(m.seq, 12u);
  EXPECT_EQ(ch.try_peek_head()->seq, 13u);
  EXPECT_EQ(ch.size(), 2u);
}

TEST(Channel, CoalescedRunRefillsAtCapacityBoundary) {
  // full()/occupancy around the boundary when a run partially drains and
  // the producer tops the same run back up.
  BoundedChannel ch(3, nullptr);
  EXPECT_EQ(ch.try_push_dummies(0, 3), 3u);
  EXPECT_TRUE(ch.full());
  EXPECT_EQ(ch.pop_dummies(2).popped, 2u);
  EXPECT_FALSE(ch.full());
  EXPECT_EQ(ch.size(), 1u);
  // Continue the same run: coalesces onto the surviving segment.
  EXPECT_EQ(ch.try_push_dummies(3, 4), 2u);
  EXPECT_TRUE(ch.full());
  const auto head = ch.try_peek_head();
  EXPECT_EQ(head->seq, 2u);
  EXPECT_EQ(head->run, 3u);
  EXPECT_EQ(ch.stats().dummies_pushed, 5u);
  EXPECT_EQ(ch.stats().max_occupancy, 3);
}

TEST(Channel, AbortWithCoalescedRunInFlight) {
  BoundedChannel ch(8, nullptr);
  EXPECT_EQ(ch.try_push_dummies(0, 4), 4u);
  ch.abort();
  // Heads stay observable after abort: the consumer drains while
  // unwinding.
  auto head = ch.try_peek_head();
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->run, 4u);
  EXPECT_EQ(ch.pop_dummies(4).popped, 4u);
  EXPECT_TRUE(ch.empty());
  // But no new traffic enters an aborted channel.
  bool aborted = false;
  EXPECT_EQ(ch.try_push_dummies(4, 2, nullptr, &aborted), 0u);
  EXPECT_TRUE(aborted);
  EXPECT_EQ(ch.try_push(Message::dummy(4)), PushResult::Aborted);
}

// --- blocking / abort / monitor ---------------------------------------

TEST(Channel, BlocksWhenFullUntilPop) {
  BoundedChannel ch(1, nullptr);
  ASSERT_TRUE(ch.push(Message::data(0, Value(0))));
  std::thread producer([&] {
    // Blocks until the consumer pops.
    EXPECT_TRUE(ch.push(Message::data(1, Value(0))));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  (void)ch.pop();
  producer.join();
  EXPECT_EQ(ch.peek_head_wait()->seq, 1u);
}

TEST(Channel, BlocksWhenEmptyUntilPush) {
  BoundedChannel ch(1, nullptr);
  std::uint64_t got = 99;
  std::thread consumer([&] {
    const auto m = ch.peek_head_wait();
    ASSERT_TRUE(m.has_value());
    got = m->seq;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(ch.push(Message::data(5, Value(0))));
  consumer.join();
  EXPECT_EQ(got, 5u);
}

TEST(Channel, AbortReleasesBlockedProducer) {
  BoundedChannel ch(1, nullptr);
  ASSERT_TRUE(ch.push(Message::data(0, Value(0))));
  std::thread producer([&] {
    EXPECT_FALSE(ch.push(Message::data(1, Value(0))));  // aborted
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.abort();
  producer.join();
  EXPECT_TRUE(ch.aborted());
}

TEST(Channel, AbortReleasesBlockedConsumer) {
  BoundedChannel ch(1, nullptr);
  std::thread consumer([&] {
    EXPECT_FALSE(ch.peek_head_wait().has_value());  // aborted while empty
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.abort();
  consumer.join();
}

TEST(Channel, MonitorSeesBlockedStates) {
  RuntimeMonitor monitor;
  BoundedChannel ch(1, &monitor);
  monitor.thread_started();
  ASSERT_TRUE(ch.push(Message::data(0, Value(0))));
  std::thread producer([&] { (void)ch.push(Message::data(1, Value(0))); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(monitor.blocked(), 1);
  const auto progress_before = monitor.progress();
  (void)ch.pop();
  producer.join();
  EXPECT_EQ(monitor.blocked(), 0);
  EXPECT_GT(monitor.progress(), progress_before);
}

TEST(Watchdog, FiresOnAllBlocked) {
  RuntimeMonitor monitor;
  monitor.thread_started();
  monitor.enter_blocked();  // simulate a single permanently-blocked thread
  std::atomic<bool> stop{false};
  bool aborted = false;
  const bool deadlocked = run_watchdog(
      monitor, stop, WatchdogOptions{std::chrono::milliseconds(1), 5},
      [&] { aborted = true; });
  EXPECT_TRUE(deadlocked);
  EXPECT_TRUE(aborted);
}

TEST(Watchdog, StopsCleanlyWithoutDeadlock) {
  RuntimeMonitor monitor;
  std::atomic<bool> stop{false};
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stop = true;
  });
  const bool deadlocked = run_watchdog(
      monitor, stop, WatchdogOptions{std::chrono::milliseconds(1), 5},
      [] { FAIL() << "no deadlock expected"; });
  stopper.join();
  EXPECT_FALSE(deadlocked);
}

TEST(Watchdog, ProgressSuppressesFalsePositive) {
  RuntimeMonitor monitor;
  monitor.thread_started();
  monitor.enter_blocked();
  std::atomic<bool> stop{false};
  // A background thread keeps making progress; the watchdog must not fire.
  std::thread worker([&] {
    for (int i = 0; i < 50; ++i) {
      monitor.note_progress();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    stop = true;
  });
  const bool deadlocked = run_watchdog(
      monitor, stop, WatchdogOptions{std::chrono::milliseconds(2), 8},
      [] { FAIL() << "progress should prevent deadlock"; });
  worker.join();
  EXPECT_FALSE(deadlocked);
}

// --- the coalesced bulk-ingest path (try_push_batch) --------------------

std::vector<Message> data_batch(std::uint64_t first_seq, std::size_t count) {
  std::vector<Message> msgs;
  msgs.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    msgs.push_back(Message::data(first_seq + i,
                                 Value(static_cast<std::int64_t>(i))));
  return msgs;
}

TEST(Channel, TryPushBatchAcceptsRoomLimitedPrefix) {
  BoundedChannel ch(4, nullptr);
  auto msgs = data_batch(0, 6);
  bool was_empty = false;
  bool aborted = true;
  EXPECT_EQ(ch.try_push_batch(msgs.data(), msgs.size(), &was_empty, &aborted),
            4u);
  EXPECT_TRUE(was_empty);  // the empty -> non-empty wake edge
  EXPECT_FALSE(aborted);
  // FIFO intact: exactly the accepted prefix, in order.
  for (std::uint64_t seq = 0; seq < 4; ++seq) {
    const auto m = ch.peek_head_wait();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->seq, seq);
    EXPECT_EQ(m->kind, MessageKind::Data);
    (void)ch.pop();
  }
  // A second batch on the now non-empty channel reports no wake edge.
  ASSERT_TRUE(ch.push(Message::data(10, Value(0))));
  auto more = data_batch(11, 2);
  was_empty = true;
  EXPECT_EQ(ch.try_push_batch(more.data(), more.size(), &was_empty, &aborted),
            2u);
  EXPECT_FALSE(was_empty);
}

TEST(Channel, TryPushBatchCountsEveryMessageInStats) {
  BoundedChannel ch(8, nullptr);
  auto msgs = data_batch(0, 5);
  EXPECT_EQ(ch.try_push_batch(msgs.data(), msgs.size()), 5u);
  const auto s = ch.stats();
  EXPECT_EQ(s.data_pushed, 5u);
  EXPECT_EQ(s.max_occupancy, 5);
}

TEST(Channel, TryPushBatchDistinguishesAbortFromFull) {
  BoundedChannel full_ch(2, nullptr);
  auto fill = data_batch(0, 2);
  ASSERT_EQ(full_ch.try_push_batch(fill.data(), fill.size()), 2u);
  auto extra = data_batch(2, 1);
  bool aborted = true;
  EXPECT_EQ(full_ch.try_push_batch(extra.data(), 1, nullptr, &aborted), 0u);
  EXPECT_FALSE(aborted);  // just full

  BoundedChannel dead_ch(4, nullptr);
  dead_ch.abort();
  auto msgs = data_batch(0, 2);
  aborted = false;
  EXPECT_EQ(dead_ch.try_push_batch(msgs.data(), 2, nullptr, &aborted), 0u);
  EXPECT_TRUE(aborted);
}

// Differential: a batch push drains to exactly the same consumer-visible
// stream as the same messages pushed one at a time.
TEST(Channel, TryPushBatchEquivalentToSinglePushes) {
  BoundedChannel one(16, nullptr);
  BoundedChannel bulk(16, nullptr);
  std::uint64_t seq = 0;
  for (int round = 0; round < 8; ++round) {
    const std::size_t n = 1 + (round * 3) % 7;
    auto msgs = data_batch(seq, n);
    for (std::size_t i = 0; i < n; ++i) {
      auto copy = Message::data(msgs[i].seq, Value(std::int64_t(i)));
      ASSERT_EQ(one.try_push(std::move(copy)), PushResult::Ok);
    }
    ASSERT_EQ(bulk.try_push_batch(msgs.data(), n), n);
    seq += n;
    // Drain a few from both to exercise wraparound.
    for (int d = 0; d < 3 && !one.empty(); ++d) {
      const auto a = one.peek_head_wait();
      const auto b = bulk.peek_head_wait();
      ASSERT_TRUE(a.has_value());
      ASSERT_TRUE(b.has_value());
      EXPECT_EQ(a->seq, b->seq);
      EXPECT_EQ(a->kind, b->kind);
      (void)one.pop();
      (void)bulk.pop();
    }
  }
  while (!one.empty()) {
    EXPECT_EQ(one.peek_head_wait()->seq, bulk.peek_head_wait()->seq);
    (void)one.pop();
    (void)bulk.pop();
  }
  EXPECT_TRUE(bulk.empty());
}

}  // namespace
}  // namespace sdaf::runtime
