#include "src/spdag/metrics.h"

#include <gtest/gtest.h>

#include "src/graph/topo.h"
#include "src/spdag/sp_builder.h"
#include "src/spdag/recognizer.h"
#include "src/support/prng.h"
#include "src/workloads/random_sp.h"
#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

TEST(SpMetrics, SingleEdge) {
  const auto built = build_sp(SpSpec::edge(7));
  const auto m = compute_sp_metrics(built.tree, built.graph);
  EXPECT_EQ(m.shortest_buffer[built.tree.root()], 7);
  EXPECT_EQ(m.longest_hops[built.tree.root()], 1);
}

TEST(SpMetrics, SeriesAdds) {
  const auto built =
      build_sp(SpSpec::series({SpSpec::edge(2), SpSpec::edge(5)}));
  const auto m = compute_sp_metrics(built.tree, built.graph);
  EXPECT_EQ(m.shortest_buffer[built.tree.root()], 7);
  EXPECT_EQ(m.longest_hops[built.tree.root()], 2);
}

TEST(SpMetrics, ParallelMinsBuffersMaxesHops) {
  const auto built = build_sp(SpSpec::parallel(
      {SpSpec::series({SpSpec::edge(2), SpSpec::edge(2)}), SpSpec::edge(9)}));
  const auto m = compute_sp_metrics(built.tree, built.graph);
  EXPECT_EQ(m.shortest_buffer[built.tree.root()], 4);  // min(4, 9)
  EXPECT_EQ(m.longest_hops[built.tree.root()], 2);     // max(2, 1)
}

TEST(SpMetrics, Fig3) {
  const auto rec = recognize_sp(workloads::fig3_cycle());
  ASSERT_TRUE(rec.is_sp);
  const auto m = compute_sp_metrics(rec.tree, workloads::fig3_cycle());
  EXPECT_EQ(m.shortest_buffer[rec.tree.root()], 6);  // a-c-d-f
  EXPECT_EQ(m.longest_hops[rec.tree.root()], 3);
}

// L and h computed over the tree must agree with direct DAG shortest/longest
// path computations on the underlying graph.
TEST(SpMetrics, AgreesWithGraphDp) {
  Prng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    workloads::RandomSpOptions opt;
    opt.target_edges = 2 + static_cast<std::size_t>(trial);
    const auto built = workloads::random_sp(rng, opt);
    const auto m = compute_sp_metrics(built.tree, built.graph);
    const NodeId src = built.graph.unique_source();
    const NodeId snk = built.graph.unique_sink();
    EXPECT_EQ(m.shortest_buffer[built.tree.root()],
              shortest_buffer_dist(built.graph, src)[snk]);
    EXPECT_EQ(m.longest_hops[built.tree.root()],
              longest_hop_dist(built.graph, src)[snk]);
  }
}

TEST(HopsThrough, SingleLeafIsOne) {
  const auto built = build_sp(SpSpec::edge(4));
  const auto m = compute_sp_metrics(built.tree, built.graph);
  const auto parents = built.tree.parents();
  EXPECT_EQ(longest_hops_through(built.tree, m, parents, built.tree.root(),
                                 built.tree.root()),
            1);
}

TEST(HopsThrough, SeriesExtends) {
  // series(e, parallel(e, series(e, e))): through the lone left edge the
  // longest path is 1 + max(1, 2) = 3.
  const auto built = build_sp(SpSpec::series(
      {SpSpec::edge(1),
       SpSpec::parallel({SpSpec::edge(1),
                         SpSpec::series({SpSpec::edge(1), SpSpec::edge(1)})})}));
  const auto m = compute_sp_metrics(built.tree, built.graph);
  const auto parents = built.tree.parents();
  // Find the leaf whose edge leaves the graph source.
  const NodeId src = built.graph.unique_source();
  SpTree::Index first_leaf = -1;
  for (const auto li : built.tree.leaves_under(built.tree.root()))
    if (built.graph.edge(built.tree.node(li).edge).from == src)
      first_leaf = li;
  ASSERT_GE(first_leaf, 0);
  EXPECT_EQ(longest_hops_through(built.tree, m, parents, first_leaf,
                                 built.tree.root()),
            3);
}

// h(G, e) from the walk must match a direct computation: longest path
// source->tail(e) plus 1 plus longest path head(e)->sink.
TEST(HopsThrough, AgreesWithGraphDp) {
  Prng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    workloads::RandomSpOptions opt;
    opt.target_edges = 3 + static_cast<std::size_t>(trial);
    const auto built = workloads::random_sp(rng, opt);
    const auto m = compute_sp_metrics(built.tree, built.graph);
    const auto parents = built.tree.parents();
    const NodeId src = built.graph.unique_source();
    const auto from_src = longest_hop_dist(built.graph, src);
    for (const auto li : built.tree.leaves_under(built.tree.root())) {
      const EdgeId e = built.tree.node(li).edge;
      // Longest path head(e) -> sink via reverse DP: recompute per edge by
      // running forward DP from head(e).
      const auto from_head = longest_hop_dist(built.graph, built.graph.edge(e).to);
      const std::int64_t direct = from_src[built.graph.edge(e).from] + 1 +
                                  from_head[built.graph.unique_sink()];
      EXPECT_EQ(longest_hops_through(built.tree, m, parents, li,
                                     built.tree.root()),
                direct);
    }
  }
}

}  // namespace
}  // namespace sdaf
