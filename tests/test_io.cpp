#include "src/graph/io.h"

#include <gtest/gtest.h>

#include "src/intervals/baseline.h"
#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

TEST(TextIo, RoundTrip) {
  const StreamGraph g = workloads::fig3_cycle();
  const StreamGraph back = from_text(to_text(g));
  ASSERT_EQ(back.node_count(), g.node_count());
  ASSERT_EQ(back.edge_count(), g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(back.edge(e).from, g.edge(e).from);
    EXPECT_EQ(back.edge(e).to, g.edge(e).to);
    EXPECT_EQ(back.edge(e).buffer, g.edge(e).buffer);
  }
  for (NodeId n = 0; n < g.node_count(); ++n)
    EXPECT_EQ(back.node_name(n), g.node_name(n));
}

TEST(TextIo, ParsesCommentsAndBlankLines) {
  const StreamGraph g = from_text(
      "# a tiny graph\n"
      "node A\n"
      "\n"
      "node B\n"
      "edge A B 7\n");
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edge(0).buffer, 7);
}

TEST(TextIoDeathTest, RejectsUnknownNodeInEdge) {
  EXPECT_DEATH((void)from_text("node A\nedge A Z 3\n"), "precondition");
}

TEST(TextIoDeathTest, RejectsDuplicateNode) {
  EXPECT_DEATH((void)from_text("node A\nnode A\n"), "precondition");
}

TEST(Dot, ContainsNodesAndEdges) {
  const StreamGraph g = workloads::fig2_triangle();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"A\""), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n2"), std::string::npos);
}

TEST(Dot, AnnotatesIntervals) {
  const StreamGraph g = workloads::fig2_triangle();
  const IntervalMap ivals = propagation_intervals_exact(g);
  const std::string dot = to_dot(g, &ivals);
  EXPECT_NE(dot.find("/ 2"), std::string::npos);  // [AB] = 2
  EXPECT_NE(dot.find("/ inf"), std::string::npos);  // [BC] unconstrained
}

}  // namespace
}  // namespace sdaf
