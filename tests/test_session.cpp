#include "src/exec/session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "src/core/compile.h"
#include "src/runtime/pool_executor.h"
#include "src/support/prng.h"
#include "src/workloads/filters.h"
#include "src/workloads/topologies.h"
#include "tests/harness/stress_harness.h"

namespace sdaf::exec {
namespace {

using runtime::DummyMode;
using runtime::Kernel;

constexpr Backend kBackends[] = {Backend::Sim, Backend::Threaded,
                                 Backend::Pooled};

// The facade-level differential harness: the same RunSpec through every
// backend must produce identical verdicts, per-edge traffic, firing counts
// and sink deliveries -- one semantics behind one API.
void expect_same_report(const RunReport& expected, const RunReport& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.deadlocked, actual.deadlocked) << label;
  ASSERT_EQ(expected.completed, actual.completed) << label;
  ASSERT_EQ(expected.sink_data, actual.sink_data) << label;
  ASSERT_EQ(expected.fires, actual.fires) << label;
  ASSERT_EQ(expected.edges.size(), actual.edges.size()) << label;
  for (std::size_t e = 0; e < expected.edges.size(); ++e) {
    EXPECT_EQ(expected.edges[e].data, actual.edges[e].data)
        << label << " edge " << e;
    EXPECT_EQ(expected.edges[e].dummies, actual.edges[e].dummies)
        << label << " edge " << e;
  }
}

std::vector<std::shared_ptr<Kernel>> wedge_kernels() {
  std::vector<std::shared_ptr<Kernel>> kernels;
  kernels.push_back(std::make_shared<runtime::RelayKernel>(
      workloads::adversarial_prefix_filter(1, 100)));
  kernels.push_back(runtime::pass_through_kernel());
  kernels.push_back(runtime::pass_through_kernel());
  return kernels;
}

TEST(Session, RandomizedWorkloadsIdenticalAcrossBackendsAndModes) {
  // Ported onto the stress harness (tests/harness/stress_harness.h): the
  // same randomized SP/ladder sweep through all three backends and both
  // dummy modes at a random firing quantum, now with a one-line repro
  // command on any mismatch.
  Prng rng(0xC0FFEE);
  runtime::PoolExecutor pool(3);
  int cases = 0;
  for (int i = 0; i < 11; ++i) {
    for (const auto mode :
         {DummyMode::Propagation, DummyMode::NonPropagation}) {
      harness::CaseSpec spec;
      spec.topology =
          i < 6 ? harness::Topology::Sp : harness::Topology::Ladder;
      spec.seed = rng.next_u64();
      spec.num_inputs = 30 + rng.next_below(50);
      spec.pass_rate = 0.3 + 0.7 * rng.next_double();
      spec.mode = mode;
      // Random firing quantum: batching must never change the traffic.
      spec.batch = 1 + static_cast<std::uint32_t>(rng.next_below(16));
      const auto failure = harness::run_differential(spec, &pool);
      ASSERT_FALSE(failure.has_value()) << *failure;
      ++cases;
    }
  }
  EXPECT_GE(cases, 22);
}

// The coalescing differential: the continuation ladder floods dense runs of
// consecutive-sequence dummies (every item the filter stage drops continues
// down the relay chain as a dummy), so coalesced segments cross every
// sink's batched paths. Every backend, both dummy modes, and every batch
// quantum must produce bit-identical traffic -- batching amortizes cost,
// never changes semantics.
TEST(Session, DummyRunCoalescingIdenticalAcrossBackendsAndBatches) {
  const StreamGraph g = workloads::continuation_ladder(3, 32, 1);
  runtime::PoolExecutor pool(2);
  for (const auto mode :
       {DummyMode::Propagation, DummyMode::NonPropagation}) {
    core::CompileOptions copt;
    copt.algorithm = mode == DummyMode::Propagation
                         ? core::Algorithm::Propagation
                         : core::Algorithm::NonPropagation;
    const auto compiled = core::compile(g, copt);
    ASSERT_TRUE(compiled.ok) << compiled.diagnostics;
    for (const double pass_rate : {0.05, 0.4}) {
      Session session(g, workloads::relay_kernels(g, pass_rate, 0xD00D));
      RunSpec spec;
      spec.mode = mode;
      spec.apply(compiled);
      spec.num_inputs = 400;
      spec.pool = &pool;
      RunSpec ref_spec = spec;
      ref_spec.backend = Backend::Sim;
      ref_spec.batch = 1;
      const RunReport reference = session.run(ref_spec);
      ASSERT_TRUE(reference.completed);
      EXPECT_GT(reference.total_dummies(), reference.total_data())
          << "workload not dummy-heavy; the coalescing path is not covered";
      for (const Backend backend : kBackends) {
        for (const std::uint32_t batch : {1u, 7u, 64u}) {
          spec.backend = backend;
          spec.batch = batch;
          const std::string label = std::string(to_string(backend)) +
                                    " batch=" + std::to_string(batch) +
                                    " p=" + std::to_string(pass_rate);
          expect_same_report(reference, session.run(spec), label);
        }
      }
    }
  }
}

TEST(Session, Fig2WedgeSameVerdictAndStateDumpOnEveryBackend) {
  // The Fig. 2 triangle with the adversarial filter and no avoidance must
  // wedge on every backend, and every backend must surface a usable
  // post-mortem through RunReport::state_dump.
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  for (const Backend backend : kBackends) {
    // Batching adds at most `batch` held outputs per node -- far below the
    // 100-seq adversarial prefix that forces this wedge -- so the deadlock
    // must manifest and certify exactly at both quanta.
    for (const std::uint32_t batch : {1u, 64u}) {
      Session session(g, wedge_kernels());
      RunSpec spec;
      spec.backend = backend;
      spec.mode = DummyMode::None;
      spec.num_inputs = 100;
      spec.pool_workers = 2;
      spec.batch = batch;
      const auto report = session.run(spec);
      const std::string label = std::string(to_string(backend)) +
                                " batch=" + std::to_string(batch);
      EXPECT_TRUE(report.deadlocked) << label;
      EXPECT_FALSE(report.completed) << label;
      ASSERT_FALSE(report.state_dump.empty()) << label;
      EXPECT_NE(report.state_dump.find("edge "), std::string::npos) << label;
      EXPECT_NE(report.state_dump.find("node "), std::string::npos) << label;
      if (backend == Backend::Sim)
        EXPECT_GT(report.sweeps, 0u);
      else
        EXPECT_EQ(report.sweeps, 0u);
    }
  }
}

TEST(Session, Fig2CompiledIntervalsCompleteOnEveryBackend) {
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  for (const Backend backend : kBackends) {
    Session session(g, wedge_kernels());
    RunSpec spec;
    spec.backend = backend;
    spec.num_inputs = 100;
    spec.pool_workers = 2;
    const auto [compiled, report] = session.compile_and_run(spec);
    ASSERT_TRUE(compiled->ok);
    EXPECT_TRUE(report.completed) << to_string(backend);
    EXPECT_TRUE(report.state_dump.empty()) << to_string(backend);
    EXPECT_EQ(report.sink_data[2], 100u) << to_string(backend);
  }
}

// The tracer rides on the shared firing core, so all three backends must
// record the same per-message events; only ordering and ticks may differ
// between the deterministic sweep and the concurrent backends.
TEST(Session, TracerEventMultisetIdenticalAcrossBackends) {
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  const auto compiled = core::compile(g);
  ASSERT_TRUE(compiled.ok);

  using Key = std::tuple<int, NodeId, std::size_t, std::uint64_t>;
  const auto event_multiset = [](const runtime::Tracer& tracer) {
    std::vector<Key> keys;
    for (const auto& e : tracer.snapshot())
      keys.emplace_back(static_cast<int>(e.kind), e.node, e.slot, e.seq);
    std::sort(keys.begin(), keys.end());
    return keys;
  };

  std::vector<Key> reference;
  for (const Backend backend : kBackends) {
    runtime::Tracer tracer(1u << 20);
    Session session(g, workloads::relay_kernels(g, 0.5, 11));
    RunSpec spec;
    spec.backend = backend;
    spec.apply(compiled);
    spec.num_inputs = 200;
    spec.pool_workers = 2;
    spec.tracer = &tracer;
    const auto report = session.run(spec);
    ASSERT_TRUE(report.completed) << to_string(backend);
    ASSERT_EQ(tracer.dropped(), 0u) << to_string(backend);
    auto keys = event_multiset(tracer);
    EXPECT_FALSE(keys.empty());
    if (backend == Backend::Sim)
      reference = std::move(keys);
    else
      EXPECT_EQ(reference, keys) << to_string(backend);
  }
}

TEST(Session, CompileAndRunChainsTheCache) {
  const StreamGraph g = workloads::fig1_splitjoin(3);
  core::CompileCache cache(8);
  Session session(g, workloads::relay_kernels(g, 0.6, 5));
  session.set_compile_cache(&cache);
  RunSpec spec;
  spec.num_inputs = 500;
  const auto first = session.compile_and_run(spec);
  ASSERT_TRUE(first.compiled->ok);
  EXPECT_TRUE(first.report.completed);
  EXPECT_GT(first.report.total_data(), 0u);
  const auto second = session.compile_and_run(spec);
  EXPECT_TRUE(second.report.completed);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  // Deterministic backend + same spec: bit-identical traffic.
  expect_same_report(first.report, second.report, "cache round-trip");
}

TEST(Session, CompileRejectionSurfacesWithoutRunning) {
  const StreamGraph g = workloads::fig4_butterfly(2);
  Session session(g, workloads::passthrough_kernels(g));
  core::CompileOptions copt;
  copt.general_policy = core::GeneralPolicy::Reject;
  core::CompileCache cache(4);
  session.set_compile_cache(&cache);
  RunSpec spec;
  spec.num_inputs = 10;
  const auto [compiled, report] = session.compile_and_run(spec, copt);
  EXPECT_FALSE(compiled->ok);
  EXPECT_FALSE(compiled->diagnostics.empty());
  EXPECT_FALSE(report.completed);
  EXPECT_FALSE(report.deadlocked);
  EXPECT_TRUE(report.fires.empty());  // nothing ran
}

TEST(Session, ApplyAdoptsCompiledConfiguration) {
  // The continuation-edge counterexample graph: forward_on_filter is
  // non-trivial ({0,1,0}), so apply() must carry it in Propagation mode and
  // drop it in Non-Propagation mode.
  StreamGraph g;
  const NodeId u = g.add_node("u");
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.add_edge(u, a, 5);
  g.add_edge(a, b, 5);
  g.add_edge(u, b, 1);
  const auto compiled = core::compile(g);
  ASSERT_TRUE(compiled.ok);

  RunSpec prop;
  prop.mode = DummyMode::Propagation;
  prop.apply(compiled);
  EXPECT_EQ(prop.intervals.size(), g.edge_count());
  EXPECT_EQ(prop.forward_on_filter, (std::vector<std::uint8_t>{0, 1, 0}));

  RunSpec nonprop;
  nonprop.mode = DummyMode::NonPropagation;
  nonprop.apply(compiled);
  EXPECT_EQ(nonprop.intervals.size(), g.edge_count());
  EXPECT_TRUE(nonprop.forward_on_filter.empty());
}

TEST(Session, PooledSubmitInterleavesTenantsAndMatchesSim) {
  const StreamGraph g = workloads::splitjoin(3, 2, 4);
  runtime::PoolExecutor pool(3);
  struct Tenant {
    std::uint64_t seed;
    Session::Pending pending;
  };
  std::vector<Tenant> tenants;
  for (std::uint64_t t = 0; t < 6; ++t) {
    Session session(g, workloads::relay_kernels(g, 0.8, 0x90 + t));
    RunSpec spec;
    spec.backend = Backend::Pooled;
    spec.mode = DummyMode::None;
    spec.num_inputs = 120;
    spec.pool = &pool;
    tenants.push_back({0x90 + t, session.submit(spec)});
  }
  for (auto& tenant : tenants) {
    Session session(g, workloads::relay_kernels(g, 0.8, tenant.seed));
    RunSpec spec;
    spec.mode = DummyMode::None;
    spec.num_inputs = 120;
    const auto expected = session.run(spec);
    expect_same_report(expected, tenant.pending.get(),
                       "tenant " + std::to_string(tenant.seed));
  }
}

}  // namespace
}  // namespace sdaf::exec
