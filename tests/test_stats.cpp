#include "src/support/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sdaf {
namespace {

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Quantile, MedianAndExtremes) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Quantile, Interpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
}

TEST(LogLogSlope, RecoversPowerLaw) {
  std::vector<double> x, y2, y1;
  for (double n = 8; n <= 4096; n *= 2) {
    x.push_back(n);
    y2.push_back(3.0 * n * n);   // quadratic
    y1.push_back(0.5 * n);       // linear
  }
  EXPECT_NEAR(loglog_slope(x, y2), 2.0, 1e-9);
  EXPECT_NEAR(loglog_slope(x, y1), 1.0, 1e-9);
}

TEST(LogLogSlope, NoisyDataStaysClose) {
  std::vector<double> x, y;
  for (double n = 16; n <= 16384; n *= 2) {
    x.push_back(n);
    y.push_back(n * n * n * (1.0 + 0.05 * std::sin(n)));
  }
  EXPECT_NEAR(loglog_slope(x, y), 3.0, 0.05);
}

}  // namespace
}  // namespace sdaf
