#include "src/intervals/nonprop_sp.h"

#include <gtest/gtest.h>

#include "src/intervals/baseline.h"
#include "src/spdag/recognizer.h"
#include "src/support/prng.h"
#include "src/workloads/random_sp.h"
#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

IntervalMap nonprop_for(const StreamGraph& g) {
  const auto rec = recognize_sp(g);
  EXPECT_TRUE(rec.is_sp);
  return nonprop_intervals_sp(g, rec.tree);
}

TEST(NonPropSp, Fig3MatchesPaper) {
  const auto iv = nonprop_for(workloads::fig3_cycle());
  EXPECT_EQ(iv[0], Rational(2));     // [ab] = 6/3
  EXPECT_EQ(iv[2], Rational(2));     // [be]
  EXPECT_EQ(iv[4], Rational(2));     // [ef]
  EXPECT_EQ(iv[1], Rational(8, 3));  // [ac]
  EXPECT_EQ(iv[3], Rational(8, 3));  // [cd]
  EXPECT_EQ(iv[5], Rational(8, 3));  // [df]
}

TEST(NonPropSp, PaperRoundupMaterialization) {
  const auto iv = nonprop_for(workloads::fig3_cycle());
  EXPECT_EQ(iv[1].ceil(), 3);  // "8/3 = 3 (roundup)"
  EXPECT_EQ(iv[0].ceil(), 2);  // 6/3 = 2 exactly
}

TEST(NonPropSp, Triangle) {
  const auto iv = nonprop_for(workloads::fig2_triangle(2, 3, 5));
  EXPECT_EQ(iv[0], Rational(5, 2));
  EXPECT_EQ(iv[1], Rational(5, 2));
  EXPECT_EQ(iv[2], Rational(5));
}

TEST(NonPropSp, EveryCycleEdgeConstrained) {
  // Unlike Propagation, Non-Propagation constrains *every* edge lying on a
  // cycle, not just split-node out-edges.
  const auto iv = nonprop_for(workloads::fig1_splitjoin(3));
  for (EdgeId e = 0; e < 4; ++e) EXPECT_TRUE(iv[e].is_finite());
}

TEST(NonPropSp, PipelineUnconstrained) {
  EXPECT_TRUE(nonprop_for(workloads::pipeline(5)).all_infinite());
}

class NonPropEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NonPropEquivalence, MatchesExponentialBaseline) {
  Prng rng(GetParam() * 7919 + 13);
  for (const std::size_t edges : {2u, 4u, 8u, 16u, 28u}) {
    workloads::RandomSpOptions opt;
    opt.target_edges = edges;
    opt.max_buffer = 9;
    const auto built = workloads::random_sp(rng, opt);
    const auto fast = nonprop_intervals_sp(built.graph, built.tree);
    const auto exact = nonprop_intervals_exact(built.graph);
    EXPECT_EQ(fast, exact) << "|E|=" << edges;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NonPropEquivalence,
                         ::testing::Range<std::uint64_t>(0, 40));

// Non-Propagation intervals never exceed Propagation intervals on the same
// edge *when both are finite on split edges*... in general the two are
// incomparable; what must hold is that dividing by a positive hop count
// only shrinks the constraint realized on the same cycle side. Verify the
// weaker invariant: on every edge where Propagation is finite,
// Non-Propagation is also finite and no larger.
TEST(NonPropSp, DominatedByPropagationOnSplitEdges) {
  Prng rng(2718);
  for (int trial = 0; trial < 25; ++trial) {
    workloads::RandomSpOptions opt;
    opt.target_edges = 18;
    const auto built = workloads::random_sp(rng, opt);
    const auto prop = propagation_intervals_exact(built.graph);
    const auto np = nonprop_intervals_sp(built.graph, built.tree);
    for (EdgeId e = 0; e < built.graph.edge_count(); ++e) {
      if (prop[e].is_finite()) {
        ASSERT_TRUE(np[e].is_finite());
        EXPECT_LE(np[e], prop[e]);
      }
    }
  }
}

}  // namespace
}  // namespace sdaf
