// sdaf::qos -- the multi-tenant subsystem's unit and integration tests:
// the interval-aware cost model (predictions from compile-time facts), the
// admission ledger (budgets, typed rejections, exact release), the credit
// gauge (all-or-nothing and partial acquire), the admission-aware
// Session::open overload (typed OpenDecision + lease-bound release),
// end-to-end per-tenant credit backpressure on every backend (bit-identical
// to uncredited runs), and the DRR injector's per-tenant accounting.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/core/compile.h"
#include "src/exec/session.h"
#include "src/exec/stream.h"
#include "src/qos/admission.h"
#include "src/qos/cost.h"
#include "src/qos/credit.h"
#include "src/runtime/pool_executor.h"
#include "src/runtime/wrapper.h"
#include "src/workloads/filters.h"
#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

using namespace std::chrono_literals;

StreamGraph pipeline3() {
  StreamGraph g;
  const NodeId a = g.add_node("A");
  const NodeId m = g.add_node("B");
  const NodeId z = g.add_node("C");
  g.add_edge(a, m, 4);
  g.add_edge(m, z, 4);
  return g;
}

// --- cost model -----------------------------------------------------------

TEST(QosCost, PredictsSlotsBytesNodesFromTheGraph) {
  const StreamGraph g = pipeline3();
  const qos::TenantCost cost = qos::estimate(g, std::vector<std::int64_t>{});
  EXPECT_EQ(cost.nodes, 3u);
  EXPECT_EQ(cost.channel_slots, 8u);  // 4 + 4
  EXPECT_EQ(cost.channel_bytes, cost.channel_slots * sizeof(runtime::Message));
  // No finite intervals -> no predicted avoidance overhead.
  EXPECT_DOUBLE_EQ(cost.dummy_overhead_ratio, 0.0);
}

TEST(QosCost, DummyRatioIsMeanInverseIntervalOverFiniteEdges) {
  const StreamGraph g = pipeline3();
  // Edge 0 at interval 4 (1/4), edge 1 infinite: mean over finite = 0.25.
  const qos::TenantCost cost =
      qos::estimate(g, {4, runtime::kInfiniteInterval});
  EXPECT_DOUBLE_EQ(cost.dummy_overhead_ratio, 0.25);
  // Both finite: mean of 1/4 and 1/2.
  const qos::TenantCost both = qos::estimate(g, {4, 2});
  EXPECT_DOUBLE_EQ(both.dummy_overhead_ratio, 0.375);
}

TEST(QosCost, CompiledIntervalsMatchTheExplicitOverload) {
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  const auto compiled = core::compile(g);
  ASSERT_TRUE(compiled.ok);
  const qos::TenantCost a = qos::estimate(g, compiled);
  exec::RunSpec rs;
  rs.apply(compiled);
  const qos::TenantCost b = qos::estimate(g, rs.intervals);
  EXPECT_EQ(a.channel_slots, b.channel_slots);
  EXPECT_DOUBLE_EQ(a.dummy_overhead_ratio, b.dummy_overhead_ratio);
}

// --- admission ledger -----------------------------------------------------

TEST(QosAdmission, ZeroBudgetsAdmitEverything) {
  qos::Admission adm;
  qos::TenantCost cost;
  cost.channel_slots = 1u << 30;
  cost.nodes = 1u << 20;
  EXPECT_FALSE(adm.admit("t", cost).has_value());
  EXPECT_EQ(adm.admitted_total(), 1u);
  EXPECT_EQ(adm.rejected_total(), 0u);
}

TEST(QosAdmission, RejectionNamesTheExceededBudgetAndCarriesThePrediction) {
  qos::Budgets b;
  b.max_nodes = 2;
  qos::Admission adm(b);
  qos::TenantCost cost;
  cost.nodes = 3;
  const auto rejected = adm.admit("t", cost);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_NE(rejected->reason.find("nodes"), std::string::npos);
  EXPECT_EQ(rejected->predicted.nodes, 3u);
  // Nothing was reserved.
  EXPECT_EQ(adm.usage().nodes, 0u);
  EXPECT_EQ(adm.rejected_total(), 1u);
}

TEST(QosAdmission, ReleaseReturnsTheExactReservation) {
  qos::Budgets b;
  b.max_channel_slots = 10;
  qos::Admission adm(b);
  qos::TenantCost cost;
  cost.channel_slots = 6;
  ASSERT_FALSE(adm.admit("t", cost).has_value());
  // A second stream of the same shape exceeds the budget...
  EXPECT_TRUE(adm.admit("t", cost).has_value());
  // ...until the first retires.
  adm.release("t", cost);
  EXPECT_EQ(adm.usage().channel_slots, 0u);
  EXPECT_FALSE(adm.admit("t", cost).has_value());
}

TEST(QosAdmission, TenantFanoutBudgets) {
  qos::Budgets b;
  b.max_tenants = 1;
  b.max_streams_per_tenant = 2;
  qos::Admission adm(b);
  const qos::TenantCost cost;
  ASSERT_FALSE(adm.admit("a", cost).has_value());
  ASSERT_FALSE(adm.admit("a", cost).has_value());
  // Third stream for "a" trips max_streams_per_tenant.
  EXPECT_TRUE(adm.admit("a", cost).has_value());
  // A second distinct tenant trips max_tenants.
  EXPECT_TRUE(adm.admit("b", cost).has_value());
  // Tenant "a" fully retiring frees the tenant slot.
  adm.release("a", cost);
  adm.release("a", cost);
  EXPECT_FALSE(adm.admit("b", cost).has_value());
}

TEST(QosAdmission, DummyRatioIsAPerStreamCap) {
  qos::Budgets b;
  b.max_dummy_ratio = 0.2;
  qos::Admission adm(b);
  qos::TenantCost cost;
  cost.dummy_overhead_ratio = 0.5;
  const auto rejected = adm.admit("t", cost);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_NE(rejected->reason.find("dummy"), std::string::npos);
  cost.dummy_overhead_ratio = 0.1;
  EXPECT_FALSE(adm.admit("t", cost).has_value());
}

// --- credit gauge ---------------------------------------------------------

TEST(QosCredit, AcquireIsAllOrNothingAndUptoIsPartial) {
  qos::CreditGauge g(4);
  EXPECT_TRUE(g.try_acquire(3));
  EXPECT_FALSE(g.try_acquire(2));  // 3 + 2 > 4: nothing taken
  EXPECT_EQ(g.in_flight(), 3u);
  EXPECT_EQ(g.try_acquire_upto(10), 1u);  // partial fill to the limit
  EXPECT_EQ(g.in_flight(), 4u);
  g.release(4);
  EXPECT_EQ(g.in_flight(), 0u);
}

TEST(QosCredit, UnlimitedGaugeNeverBlocks) {
  qos::CreditGauge g(0);
  EXPECT_TRUE(g.unlimited());
  EXPECT_TRUE(g.try_acquire(1u << 20));
  EXPECT_EQ(g.try_acquire_upto(1u << 20), 1u << 20);
  g.release(1u << 20);  // no-op, no underflow
  EXPECT_EQ(g.in_flight(), 0u);
}

TEST(QosCredit, TenantTableInternsStableGauges) {
  qos::TenantTable table(8);
  qos::CreditGauge* a = table.gauge("a");
  EXPECT_EQ(a, table.gauge("a"));
  EXPECT_NE(a, table.gauge("b"));
  EXPECT_EQ(a->limit(), 8u);
  ASSERT_TRUE(a->try_acquire(3));
  const auto entries = table.entries();
  ASSERT_EQ(entries.size(), 2u);
  for (const auto& e : entries)
    EXPECT_EQ(e.in_flight, e.tenant == "a" ? 3u : 0u);
  a->release(3);
}

// --- admission-aware Session::open ---------------------------------------

TEST(QosSession, OpenDecisionRejectsOverBudgetBeforeAllocating) {
  const StreamGraph g = pipeline3();
  exec::Session session(g, workloads::passthrough_kernels(g));
  qos::Budgets b;
  b.max_nodes = 1;
  qos::Admission adm(b);
  exec::StreamSpec spec;
  spec.run.backend = exec::Backend::Sim;
  auto decision = session.open(std::move(spec), adm);
  EXPECT_FALSE(decision.stream.has_value());
  ASSERT_TRUE(decision.rejected.has_value());
  EXPECT_EQ(decision.predicted.nodes, 3u);
  EXPECT_EQ(adm.usage().nodes, 0u);
}

TEST(QosSession, LeaseReleasesTheReservationWhenTheStreamDies) {
  const StreamGraph g = pipeline3();
  exec::Session session(g, workloads::passthrough_kernels(g));
  qos::Budgets b;
  b.max_streams_per_tenant = 1;
  qos::Admission adm(b);
  {
    exec::StreamSpec spec;
    spec.run.backend = exec::Backend::Sim;
    auto decision = session.open(std::move(spec), adm);
    ASSERT_TRUE(decision.stream.has_value());
    EXPECT_EQ(adm.usage().streams, 1u);
    // The budget is taken while the stream lives...
    exec::StreamSpec again;
    again.run.backend = exec::Backend::Sim;
    auto second = session.open(std::move(again), adm);
    EXPECT_TRUE(second.rejected.has_value());
    decision.stream->input(0).close();
    (void)decision.stream->finish();
  }
  // ...and returns exactly when the Stream is destroyed.
  EXPECT_EQ(adm.usage().streams, 0u);
  exec::StreamSpec spec;
  spec.run.backend = exec::Backend::Sim;
  auto third = session.open(std::move(spec), adm);
  ASSERT_TRUE(third.stream.has_value());
  third.stream->input(0).close();
  (void)third.stream->finish();
}

// --- credit backpressure through the ports --------------------------------

// A credited stream's pushes stop at the window and resume as the source
// drains its feed; the completed run is bit-identical to an uncredited one.
void credit_backpressure_roundtrip(exec::Backend backend) {
  const StreamGraph g = pipeline3();
  const std::uint64_t kItems = 200;

  const auto run_with = [&](qos::CreditGauge* credits) {
    exec::Session session(g, workloads::passthrough_kernels(g));
    exec::StreamSpec spec;
    spec.run.backend = backend;
    spec.run.pool_workers = 2;
    spec.run.credits = credits;
    exec::Stream stream = session.open(std::move(spec));
    std::thread drainer;
    if (backend != exec::Backend::Sim)
      drainer = std::thread([&] {
        while (stream.output(0).next().has_value()) {
        }
      });
    for (std::uint64_t i = 0; i < kItems; ++i)
      EXPECT_TRUE(stream.input(0).push());
    stream.input(0).close();
    if (backend == exec::Backend::Sim)
      while (stream.output(0).next().has_value()) {
      }
    else
      drainer.join();
    return stream.finish();
  };

  qos::CreditGauge tight(3);  // smaller than every channel on the path
  const exec::RunReport credited = run_with(&tight);
  const exec::RunReport baseline = run_with(nullptr);
  EXPECT_TRUE(credited.completed);
  EXPECT_EQ(tight.in_flight(), 0u) << "credits leaked";
  EXPECT_EQ(credited.fires, baseline.fires);
  EXPECT_EQ(credited.sink_data, baseline.sink_data);
  ASSERT_EQ(credited.edges.size(), baseline.edges.size());
  for (std::size_t e = 0; e < credited.edges.size(); ++e) {
    EXPECT_EQ(credited.edges[e].data, baseline.edges[e].data) << e;
    EXPECT_EQ(credited.edges[e].dummies, baseline.edges[e].dummies) << e;
  }
}

TEST(QosBackpressure, SimRoundTripUnderTightWindow) {
  credit_backpressure_roundtrip(exec::Backend::Sim);
}

TEST(QosBackpressure, ThreadedRoundTripUnderTightWindow) {
  credit_backpressure_roundtrip(exec::Backend::Threaded);
}

TEST(QosBackpressure, PooledRoundTripUnderTightWindow) {
  credit_backpressure_roundtrip(exec::Backend::Pooled);
}

// A window another stream (here: the test itself) exhausted surfaces as
// backpressure -- try_push refuses without blocking, try_push_for times
// out -- and clears the instant credits return.
TEST(QosBackpressure, ExhaustedWindowSurfacesAsBackpressure) {
  const StreamGraph g = pipeline3();
  exec::Session session(g, workloads::passthrough_kernels(g));
  qos::CreditGauge credits(4);
  ASSERT_TRUE(credits.try_acquire(4));  // co-tenant holds the whole window
  exec::StreamSpec spec;
  spec.run.backend = exec::Backend::Threaded;
  spec.run.credits = &credits;
  exec::Stream stream = session.open(std::move(spec));
  EXPECT_FALSE(stream.input(0).try_push());
  EXPECT_EQ(stream.input(0).try_push_for(runtime::Value{}, 1ms),
            exec::PortPushOutcome::TimedOut);
  credits.release(4);  // the co-tenant drains; the window reopens
  EXPECT_TRUE(stream.input(0).try_push());
  stream.input(0).close();
  std::thread drainer([&] {
    while (stream.output(0).next().has_value()) {
    }
  });
  drainer.join();
  const auto report = stream.finish();
  EXPECT_TRUE(report.completed);
  // Exactly the one admitted item traversed the pipeline's final edge.
  ASSERT_EQ(report.edges.size(), 2u);
  EXPECT_EQ(report.edges[1].data, 1u);
  EXPECT_EQ(credits.in_flight(), 0u);
}

// --- DRR injector accounting ---------------------------------------------

TEST(QosScheduler, TenantMetricsTrackLanesAndWeights) {
  runtime::PoolExecutor::Options opt;
  opt.workers = 2;
  opt.fair_injector = true;
  runtime::PoolExecutor pool(opt);
  const auto run_tenant = [&](const std::string& tenant, double weight) {
    const StreamGraph g = pipeline3();
    exec::Session session(g, workloads::passthrough_kernels(g));
    exec::RunSpec rs;
    rs.backend = exec::Backend::Pooled;
    rs.pool = &pool;
    rs.num_inputs = 50;
    rs.tenant = tenant;
    rs.tenant_weight = weight;
    const auto run = session.compile_and_run(rs);
    EXPECT_TRUE(run.report.completed) << tenant;
  };
  run_tenant("gold", 4.0);
  run_tenant("bronze", 1.0);

  bool saw_gold = false;
  bool saw_bronze = false;
  for (const auto& t : pool.tenant_metrics()) {
    if (t.tenant == "gold") {
      saw_gold = true;
      EXPECT_EQ(t.weight, 4u);
      EXPECT_GT(t.enqueued, 0u);
      EXPECT_EQ(t.enqueued, t.dequeued);  // quiescent: lanes fully drained
      EXPECT_EQ(t.queue_depth, 0u);
    }
    if (t.tenant == "bronze") {
      saw_bronze = true;
      EXPECT_EQ(t.weight, 1u);
      EXPECT_EQ(t.enqueued, t.dequeued);
    }
  }
  EXPECT_TRUE(saw_gold);
  EXPECT_TRUE(saw_bronze);
}

}  // namespace
}  // namespace sdaf
