#include "src/runtime/spsc_ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/runtime/message_ring.h"
#include "src/support/prng.h"

namespace sdaf::runtime {
namespace {

// ---------------------------------------------------------------------
// Model-based property tests: SpscRing driven single-threaded against the
// mutex-era MessageRing, which defines the coalescing semantics (it still
// backs the simulator's channels). Every observable -- sizes, head views,
// popped messages, acceptance counts -- must agree op for op, including
// the dummy-run coalescing boundaries, wraparound, and capacity-1 rings.
// ---------------------------------------------------------------------

void expect_same_head(MessageRing& model, SpscRing& ring,
                      const std::string& label) {
  ASSERT_EQ(model.empty(), !ring.peek_head().has_value()) << label;
  if (model.empty()) return;
  const HeadView expected = model.head();
  const auto actual = ring.peek_head();
  ASSERT_TRUE(actual.has_value()) << label;
  EXPECT_EQ(expected.seq, actual->seq) << label;
  EXPECT_EQ(expected.kind, actual->kind) << label;
  EXPECT_EQ(expected.run, actual->run) << label;
  const Message em = model.head_message();
  const auto am = ring.peek_message();
  ASSERT_TRUE(am.has_value()) << label;
  EXPECT_EQ(em.seq, am->seq) << label;
  EXPECT_EQ(em.kind, am->kind) << label;
}

// One randomized op sequence on a ring of the given capacity. The
// sequence-number stream mixes data, dummy runs, gaps (filtered ranges)
// and an occasional EOS, mirroring what a wrapper emits.
void run_model_check(std::size_t capacity, std::uint64_t seed, int ops) {
  MessageRing model(capacity);
  SpscRing ring(capacity);
  Prng rng(seed);
  std::uint64_t next_seq = 0;
  const std::string label =
      "cap=" + std::to_string(capacity) + " seed=" + std::to_string(seed);

  for (int op = 0; op < ops; ++op) {
    const std::string step = label + " op=" + std::to_string(op);
    ASSERT_EQ(model.size(), ring.size()) << step;
    ASSERT_EQ(model.full(), ring.full()) << step;
    switch (rng.next_below(6)) {
      case 0: {  // push one data message
        if (model.full()) break;
        const auto payload = static_cast<std::int64_t>(next_seq);
        model.push(Message::data(next_seq, Value(payload)));
        ASSERT_TRUE(ring.try_push(Message::data(next_seq, Value(payload))))
            << step;
        ++next_seq;
        break;
      }
      case 1: {  // push one dummy (sometimes after a seq gap)
        if (model.full()) break;
        if (rng.next_bool(0.3)) next_seq += 1 + rng.next_below(3);
        model.push(Message::dummy(next_seq));
        ASSERT_TRUE(ring.try_push(Message::dummy(next_seq))) << step;
        ++next_seq;
        break;
      }
      case 2: {  // batch-push a dummy run (partial acceptance on purpose)
        const std::size_t want = 1 + rng.next_below(capacity + 2);
        if (rng.next_bool(0.3)) next_seq += 1 + rng.next_below(3);
        const std::size_t expected = model.push_dummies(next_seq, want);
        ASSERT_EQ(expected, ring.try_push_dummies(next_seq, want)) << step;
        next_seq += expected;
        break;
      }
      case 3: {  // pop_head (materializes one message, payload included)
        if (model.empty()) break;
        const Message expected = model.pop_head();
        const Message actual = ring.pop_head();
        ASSERT_EQ(expected.seq, actual.seq) << step;
        ASSERT_EQ(expected.kind, actual.kind) << step;
        if (expected.kind == MessageKind::Data) {
          ASSERT_EQ(expected.payload.as<std::int64_t>(),
                    actual.payload.as<std::int64_t>())
              << step;
        }
        break;
      }
      case 4: {  // pop (discard)
        if (model.empty()) break;
        model.pop();
        ring.pop();
        break;
      }
      case 5: {  // batch-pop dummies (never crosses a segment)
        const std::size_t want = 1 + rng.next_below(capacity + 1);
        ASSERT_EQ(model.pop_dummies(want), ring.pop_dummies(want)) << step;
        break;
      }
    }
    expect_same_head(model, ring, step);
  }
}

TEST(SpscRingModel, AgreesWithMessageRingAcrossCapacities) {
  for (const std::size_t capacity : {1u, 2u, 3u, 5u, 8u, 64u})
    for (std::uint64_t seed = 1; seed <= 6; ++seed)
      run_model_check(capacity, 0x50D5 ^ (capacity * 1000 + seed), 4000);
}

TEST(SpscRingModel, Capacity1SealRepublishCycle) {
  // The tightest ring: every segment is sealed and its slot immediately
  // republished; runs can still extend a fully-consumed tail in place.
  SpscRing ring(1);
  EXPECT_FALSE(ring.peek_head().has_value());
  ASSERT_TRUE(ring.try_push(Message::dummy(0)));
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.try_push_dummies(1, 5), 0u);  // full: nothing fits
  EXPECT_EQ(ring.pop_dummies(5), 1u);
  EXPECT_TRUE(ring.empty());
  // Continue the same run: the producer may either extend the consumed
  // tail segment or seal-fail into a fresh one; both must look identical.
  ASSERT_TRUE(ring.try_push(Message::dummy(1)));
  const auto head = ring.peek_head();
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->seq, 1u);
  EXPECT_EQ(head->run, 1u);
  const Message m = ring.pop_head();
  EXPECT_EQ(m.seq, 1u);
  EXPECT_TRUE(ring.empty());
  ASSERT_TRUE(ring.try_push(Message::data(2, Value(std::int64_t{7}))));
  EXPECT_EQ(ring.pop_head().payload.as<std::int64_t>(), 7);
}

TEST(SpscRingModel, TransitionEffectsSingleThreaded) {
  // With no concurrency the was_empty/was_full effects are exact.
  SpscRing ring(2);
  SpscRing::PushEffect push_fx;
  ASSERT_TRUE(ring.try_push(Message::dummy(0), &push_fx));
  EXPECT_TRUE(push_fx.was_empty);
  EXPECT_EQ(push_fx.occupancy, 1u);
  ASSERT_TRUE(ring.try_push(Message::dummy(1), &push_fx));
  EXPECT_FALSE(push_fx.was_empty);
  EXPECT_EQ(push_fx.occupancy, 2u);
  SpscRing::PopEffect pop_fx;
  EXPECT_EQ(ring.pop_dummies(1, &pop_fx), 1u);
  EXPECT_TRUE(pop_fx.was_full);
  EXPECT_EQ(ring.pop_dummies(1, &pop_fx), 1u);
  EXPECT_FALSE(pop_fx.was_full);
}

// ---------------------------------------------------------------------
// Two-thread hammer, designed to run under TSan: a producer pushes a
// seeded random mix of data, dummy runs, gaps and a final EOS through the
// lock-free fast path while a consumer drains it with a random mix of
// peek/pop/pop_dummies and an observer thread probes the occupancy
// snapshot. The consumer must see exactly the produced logical stream.
// ---------------------------------------------------------------------

struct ProducedStream {
  std::vector<Message> messages;  // the logical stream, in order
};

ProducedStream make_stream(std::uint64_t seed, std::size_t length) {
  ProducedStream s;
  Prng rng(seed);
  std::uint64_t seq = 0;
  while (s.messages.size() < length) {
    if (rng.next_bool(0.2)) seq += 1 + rng.next_below(5);  // filtered gap
    if (rng.next_bool(0.6)) {
      const std::size_t run = 1 + rng.next_below(9);
      for (std::size_t i = 0; i < run && s.messages.size() < length; ++i)
        s.messages.push_back(Message::dummy(seq++));
    } else {
      s.messages.push_back(
          Message::data(seq, Value(static_cast<std::int64_t>(seq * 31 + 7))));
      ++seq;
    }
  }
  s.messages.push_back(Message::eos());
  return s;
}

void hammer(std::size_t capacity, std::uint64_t seed, std::size_t length) {
  const ProducedStream stream = make_stream(seed, length);
  SpscRing ring(capacity);
  std::atomic<bool> done{false};

  std::thread producer([&] {
    Prng rng(seed ^ 0xAA);
    std::size_t i = 0;
    while (i < stream.messages.size()) {
      const Message& m = stream.messages[i];
      // Batch consecutive dummies sometimes, to drive try_push_dummies.
      if (m.kind == MessageKind::Dummy && rng.next_bool(0.5)) {
        std::size_t run = 1;
        while (i + run < stream.messages.size() &&
               stream.messages[i + run].kind == MessageKind::Dummy &&
               stream.messages[i + run].seq == m.seq + run)
          ++run;
        run = 1 + rng.next_below(run);
        std::size_t pushed = 0;
        while (pushed < run) {
          const std::size_t got =
              ring.try_push_dummies(m.seq + pushed, run - pushed);
          pushed += got;
          if (got == 0) std::this_thread::yield();  // full: 1-CPU friendly
        }
        i += run;
        continue;
      }
      Message copy = m.kind == MessageKind::Data
                         ? Message::data(m.seq, m.payload)
                         : Message{m.seq, m.kind, {}};
      while (!ring.try_push(std::move(copy))) std::this_thread::yield();
      ++i;
    }
  });

  std::thread observer([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::size_t size = ring.size();
      ASSERT_LE(size, capacity);  // never torn, never out of range
      std::this_thread::yield();
    }
  });

  // Consumer (this thread): drain and compare against the source stream.
  Prng rng(seed ^ 0x55);
  std::size_t next = 0;
  while (next < stream.messages.size()) {
    const auto head = ring.peek_head();
    if (!head.has_value()) {
      std::this_thread::yield();
      continue;
    }
    const Message& expected = stream.messages[next];
    ASSERT_EQ(expected.seq, head->seq) << "at " << next;
    ASSERT_EQ(expected.kind, head->kind) << "at " << next;
    if (head->kind == MessageKind::Dummy && rng.next_bool(0.5)) {
      const std::size_t want = 1 + rng.next_below(head->run);
      const std::size_t got = ring.pop_dummies(want);
      ASSERT_GE(got, 1u);
      ASSERT_LE(got, want);
      next += got;
    } else if (rng.next_bool(0.5)) {
      const Message m = ring.pop_head();
      ASSERT_EQ(expected.seq, m.seq) << "at " << next;
      if (m.kind == MessageKind::Data) {
        ASSERT_EQ(expected.payload.as<std::int64_t>(),
                  m.payload.as<std::int64_t>())
            << "at " << next;
      }
      ++next;
    } else {
      ring.pop();
      ++next;
    }
  }
  EXPECT_FALSE(ring.peek_head().has_value());
  done.store(true, std::memory_order_release);
  producer.join();
  observer.join();
}

TEST(SpscRingHammer, TwoThreadsPlusOccupancyObserver) {
  // SDAF_STRESS_SECONDS scales the hammer up for tools/ci.sh --stress;
  // the default keeps the tier-1 run fast.
  double seconds = 1.0;
  if (const char* env = std::getenv("SDAF_STRESS_SECONDS"))
    seconds = std::strtod(env, nullptr);
  std::uint64_t seed = 0xD1CE;
  if (const char* env = std::getenv("SDAF_STRESS_SEED"))
    seed = std::strtoull(env, nullptr, 0);
  const auto start = std::chrono::steady_clock::now();
  int rounds = 0;
  do {
    for (const std::size_t capacity : {1u, 2u, 3u, 8u, 64u})
      hammer(capacity, seed + 977u * rounds + capacity, 4000);
    ++rounds;
  } while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count() < seconds);
  SUCCEED() << rounds << " hammer rounds";
}

// --- the bulk-ingest fast path (try_push_batch) -------------------------

TEST(SpscRing, TryPushBatchMatchesModelAcceptance) {
  for (const std::size_t capacity : {1u, 2u, 3u, 8u}) {
    MessageRing model(capacity);
    SpscRing ring(capacity);
    Prng rng(0xBA7C4 + capacity);
    std::uint64_t next_seq = 0;
    const std::string label = "cap=" + std::to_string(capacity);
    for (int op = 0; op < 2000; ++op) {
      const std::string step = label + " op=" + std::to_string(op);
      if (rng.next_below(3) == 0 && !model.empty()) {
        model.pop();
        ring.pop();
        continue;
      }
      const std::size_t want = 1 + rng.next_below(5);
      std::vector<Message> msgs;
      for (std::size_t i = 0; i < want; ++i)
        msgs.push_back(Message::data(
            next_seq + i, Value(static_cast<std::int64_t>(next_seq + i))));
      const std::size_t accepted =
          ring.try_push_batch(msgs.data(), msgs.size());
      // The model accepts one at a time; acceptance counts must agree.
      std::size_t expected = 0;
      for (std::size_t i = 0; i < want && !model.full(); ++i, ++expected)
        model.push(Message::data(
            next_seq + i, Value(static_cast<std::int64_t>(next_seq + i))));
      ASSERT_EQ(accepted, expected) << step;
      next_seq += want;
      ASSERT_EQ(model.size(), ring.size()) << step;
      expect_same_head(model, ring, step);
    }
    while (!model.empty()) {
      expect_same_head(model, ring, label + " drain");
      model.pop();
      ring.pop();
    }
    EXPECT_TRUE(ring.empty()) << label;
  }
}

// Concurrent: one producer feeding exclusively through try_push_batch, one
// consumer popping -- the consumer must observe every message exactly once,
// in order, and the single-publish staging must never expose a half-written
// slot (the payload check would catch it).
TEST(SpscRing, TryPushBatchConcurrentFifo) {
  constexpr std::uint64_t kTotal = 50000;
  for (const std::size_t capacity : {2u, 8u, 64u}) {
    SpscRing ring(capacity);
    std::thread producer([&] {
      Prng rng(0xBEE5 + capacity);
      std::uint64_t seq = 0;
      while (seq < kTotal) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(1 + rng.next_below(7), kTotal - seq));
        std::vector<Message> msgs;
        for (std::size_t i = 0; i < want; ++i)
          msgs.push_back(Message::data(
              seq + i, Value(static_cast<std::int64_t>((seq + i) * 3))));
        std::size_t done = 0;
        while (done < want) {
          const std::size_t got =
              ring.try_push_batch(msgs.data() + done, want - done);
          done += got;
          if (got == 0) std::this_thread::yield();  // full: 1-CPU friendly
        }
        seq += want;
      }
    });
    std::uint64_t expect_seq = 0;
    while (expect_seq < kTotal) {
      if (!ring.peek_head().has_value()) {
        std::this_thread::yield();  // empty: 1-CPU friendly
        continue;
      }
      const Message m = ring.pop_head();
      ASSERT_EQ(m.seq, expect_seq);
      ASSERT_EQ(m.kind, MessageKind::Data);
      ASSERT_EQ(m.payload.as<std::int64_t>(),
                static_cast<std::int64_t>(expect_seq * 3));
      ++expect_seq;
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
  }
}

// A snapshot marker rides the ring's extra physical segment: it must be
// admissible on a logically full ring, invisible to the certified
// occupancy, ordered FIFO with the surrounding traffic, and still count as
// pending work for emptiness (schedulers must not declare quiescence
// across an un-consumed marker).
TEST(SpscRing, MarkerOccupancyNeutralOrderedAndPending) {
  SpscRing ring(2);
  ASSERT_TRUE(ring.try_push(Message::data(0, Value(std::int64_t{7}))));
  ASSERT_TRUE(ring.try_push(Message::data(1, Value(std::int64_t{8}))));
  EXPECT_TRUE(ring.full());
  SpscRing::PushEffect effect;
  EXPECT_TRUE(ring.try_push_marker(2, &effect));
  EXPECT_EQ(ring.size(), 2u);  // marker excluded from logical occupancy
  EXPECT_TRUE(ring.full());
  // 2 data + 1 marker = capacity + 1 segments: even the physical headroom
  // is now gone, so a second marker is refused (the snapshot plane's
  // at-most-one-marker-per-channel invariant keeps this unreachable).
  EXPECT_FALSE(ring.try_push_marker(3));
  ring.pop();
  ring.pop();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_FALSE(ring.empty());  // the in-flight marker is pending work
  const auto head = ring.peek_head();
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->kind, MessageKind::Marker);
  EXPECT_EQ(head->seq, 2u);
  ring.pop();
  EXPECT_TRUE(ring.empty());
}

// Marker behaviour must agree with the mutex-era model ring: it terminates
// a coalesced dummy run and the run behind the barrier starts fresh.
TEST(SpscRing, MarkerNeverCoalescesWithDummyRunsModelAgreement) {
  MessageRing model(8);
  SpscRing ring(8);
  ASSERT_EQ(model.push_dummies(0, 3), 3u);
  ASSERT_EQ(ring.try_push_dummies(0, 3), 3u);
  ASSERT_TRUE(model.push_marker(3));
  ASSERT_TRUE(ring.try_push_marker(3));
  model.push(Message::dummy(3));  // consecutive seq, behind the barrier
  ASSERT_TRUE(ring.try_push(Message::dummy(3)));
  ASSERT_EQ(model.size(), ring.size());
  expect_same_head(model, ring, "marker head");
  EXPECT_EQ(model.pop_dummies(8), 3u);  // stops at the marker
  EXPECT_EQ(ring.pop_dummies(8), 3u);
  expect_same_head(model, ring, "marker reached");
  model.pop();
  ring.pop();
  expect_same_head(model, ring, "post-barrier run");  // run of 1, seq 3
  model.pop();
  ring.pop();
  EXPECT_TRUE(model.empty());
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace sdaf::runtime
