#include "src/support/prng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace sdaf {
namespace {

TEST(Prng, DeterministicForSeed) {
  Prng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Prng, NextBelowRespectsBound) {
  Prng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(13), 13u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Prng, NextBelowHitsAllResidues) {
  Prng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Prng, NextInInclusiveRange) {
  Prng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.next_in(4, 4), 4);
}

TEST(Prng, DoubleInUnitInterval) {
  Prng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Prng, BernoulliMean) {
  Prng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.next_bool(0.0));
  EXPECT_TRUE(rng.next_bool(1.0));
}

TEST(Prng, ShuffleIsPermutation) {
  Prng rng(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Prng, ShuffleActuallyMoves) {
  Prng rng(8);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto before = v;
  rng.shuffle(v);
  EXPECT_NE(v, before);
}

TEST(Prng, SplitProducesIndependentStream) {
  Prng a(42);
  Prng child = a.split();
  Prng b(42);
  (void)b.next_u64();  // consume what split consumed
  // The child must not replay the parent's stream.
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (child.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Splitmix, KnownGolden) {
  // Reference value for seed 0 from the splitmix64 reference
  // implementation.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace sdaf
