#include "src/intervals/baseline.h"

#include <gtest/gtest.h>

#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

// Triangle: edge ids 0 = A->B, 1 = B->C, 2 = A->C.
TEST(PropagationExact, Triangle) {
  const StreamGraph g = workloads::fig2_triangle(2, 3, 5);
  const auto iv = propagation_intervals_exact(g);
  EXPECT_EQ(iv[0], Rational(5));  // other side = AC buffer
  EXPECT_EQ(iv[2], Rational(5));  // other side = AB+BC = 2+3
  EXPECT_TRUE(iv[1].is_infinite());  // B is not a cycle source
}

TEST(PropagationExact, Fig3MatchesPaper) {
  const auto iv = propagation_intervals_exact(workloads::fig3_cycle());
  // Edge order: ab, ac, be, cd, ef, df.
  EXPECT_EQ(iv[0], Rational(6));  // [ab] = 3+1+2
  EXPECT_EQ(iv[1], Rational(8));  // [ac] = 2+5+1
  EXPECT_TRUE(iv[2].is_infinite());
  EXPECT_TRUE(iv[3].is_infinite());
  EXPECT_TRUE(iv[4].is_infinite());
  EXPECT_TRUE(iv[5].is_infinite());
}

TEST(NonPropExact, Fig3MatchesPaper) {
  const auto iv = nonprop_intervals_exact(workloads::fig3_cycle());
  EXPECT_EQ(iv[0], Rational(2));     // [ab] = 6/3
  EXPECT_EQ(iv[2], Rational(2));     // [be]
  EXPECT_EQ(iv[4], Rational(2));     // [ef]
  EXPECT_EQ(iv[1], Rational(8, 3));  // [ac] = 8/3
  EXPECT_EQ(iv[3], Rational(8, 3));  // [cd]
  EXPECT_EQ(iv[5], Rational(8, 3));  // [df]
}

TEST(NonPropExact, Triangle) {
  const StreamGraph g = workloads::fig2_triangle(2, 3, 5);
  const auto iv = nonprop_intervals_exact(g);
  EXPECT_EQ(iv[0], Rational(5, 2));  // A->B on the 2-hop side
  EXPECT_EQ(iv[1], Rational(5, 2));  // B->C
  EXPECT_EQ(iv[2], Rational(5));     // A->C on the 1-hop side
}

TEST(Exact, PipelineNeedsNoDummies) {
  const auto g = workloads::pipeline(6);
  EXPECT_TRUE(propagation_intervals_exact(g).all_infinite());
  EXPECT_TRUE(nonprop_intervals_exact(g).all_infinite());
}

TEST(Exact, Fig4LeftHandComputed) {
  // Edges: 0=X->a, 1=X->b, 2=a->b, 3=a->Y, 4=b->Y, all buffer 2.
  const StreamGraph g = workloads::fig4_left(2);
  const auto prop = propagation_intervals_exact(g);
  EXPECT_EQ(prop[0], Rational(2));  // cycle X-a-b vs X-b
  EXPECT_EQ(prop[1], Rational(4));
  EXPECT_EQ(prop[2], Rational(2));  // cycle a-b-Y vs a-Y
  EXPECT_EQ(prop[3], Rational(4));
  EXPECT_TRUE(prop[4].is_infinite());

  const auto np = nonprop_intervals_exact(g);
  EXPECT_EQ(np[0], Rational(1));  // min(2/2 [C1], 4/2 [C3])
  EXPECT_EQ(np[1], Rational(2));  // min(4/1 [C1], 4/2 [C3])
  EXPECT_EQ(np[2], Rational(1));
  EXPECT_EQ(np[3], Rational(2));
  EXPECT_EQ(np[4], Rational(1));  // min(4/2 [C2], 4/2 [C3])
}

TEST(Exact, ParallelEdgesUseSiblingBuffer) {
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_edge(a, b, 3);
  g.add_edge(a, b, 5);
  const auto prop = propagation_intervals_exact(g);
  EXPECT_EQ(prop[0], Rational(5));
  EXPECT_EQ(prop[1], Rational(3));
  const auto np = nonprop_intervals_exact(g);
  EXPECT_EQ(np[0], Rational(5));
  EXPECT_EQ(np[1], Rational(3));
}

TEST(Exact, ButterflyStillComputable) {
  // The baseline works on non-CS4 DAGs too (it is just exponential).
  const auto iv = propagation_intervals_exact(workloads::fig4_butterfly(2));
  // X and the two mid-layer splits (a, b) source cycles; their out-edges
  // must all be constrained.
  const StreamGraph g = workloads::fig4_butterfly(2);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const NodeId from = g.edge(e).from;
    if (g.out_degree(from) == 2)
      EXPECT_TRUE(iv[e].is_finite()) << "edge " << e;
    else
      EXPECT_TRUE(iv[e].is_infinite()) << "edge " << e;
  }
}

}  // namespace
}  // namespace sdaf
