#include "src/runtime/steal_deque.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "src/support/prng.h"
#include "src/support/timer.h"

namespace sdaf::runtime {
namespace {

// ---------------------------------------------------------------------
// Model-based property tests: StealDeque driven single-threaded against a
// sequential reference (std::deque), which defines the semantics exactly:
// push_bottom = push_back, pop_bottom = pop_back (LIFO), steal = pop_front
// (FIFO). Every observable -- popped/stolen items, emptiness, sizes --
// must agree op for op, across capacities that force the growth path.
// ---------------------------------------------------------------------

// Items are pointers into a stable arena so the deque's void* contract is
// exercised with real, distinct addresses.
struct Arena {
  std::vector<std::uint64_t> cells;
  explicit Arena(std::size_t n) : cells(n) {
    for (std::size_t i = 0; i < n; ++i) cells[i] = i;
  }
  void* item(std::size_t i) { return &cells[i]; }
  [[nodiscard]] std::size_t index(const void* p) const {
    return static_cast<std::size_t>(static_cast<const std::uint64_t*>(p) -
                                    cells.data());
  }
};

void run_model_check(std::size_t capacity, std::uint64_t seed, int ops) {
  StealDeque deque(capacity);
  std::deque<void*> model;
  Arena arena(static_cast<std::size_t>(ops) + 1);
  Prng rng(seed);
  std::size_t next = 0;
  const std::string label =
      "cap=" + std::to_string(capacity) + " seed=" + std::to_string(seed);

  for (int op = 0; op < ops; ++op) {
    const std::string step = label + " op=" + std::to_string(op);
    ASSERT_EQ(model.size(), deque.approx_size()) << step;
    switch (rng.next_below(4)) {
      case 0:
      case 1: {  // push_bottom (weighted up so the deque actually fills)
        void* item = arena.item(next++);
        model.push_back(item);
        deque.push_bottom(item);
        break;
      }
      case 2: {  // pop_bottom: LIFO, exactly the reference's back
        void* expected = model.empty() ? nullptr : model.back();
        if (!model.empty()) model.pop_back();
        ASSERT_EQ(expected, deque.pop_bottom()) << step;
        break;
      }
      case 3: {  // steal: FIFO, exactly the reference's front
        void* out = nullptr;
        const auto result = deque.steal(&out);
        if (model.empty()) {
          ASSERT_EQ(result, StealDeque::StealResult::Empty) << step;
        } else {
          // Single-threaded: contention is impossible.
          ASSERT_EQ(result, StealDeque::StealResult::Ok) << step;
          ASSERT_EQ(model.front(), out) << step;
          model.pop_front();
        }
        break;
      }
    }
  }
  // Drain both ways and require the same residue.
  while (!model.empty()) {
    ASSERT_EQ(model.back(), deque.pop_bottom()) << label;
    model.pop_back();
  }
  ASSERT_EQ(deque.pop_bottom(), nullptr) << label;
  void* out = nullptr;
  ASSERT_EQ(deque.steal(&out), StealDeque::StealResult::Empty) << label;
}

TEST(StealDequeModel, AgreesWithSequentialReferenceAcrossCapacities) {
  for (const std::size_t capacity : {2u, 3u, 4u, 8u, 64u, 256u})
    for (std::uint64_t seed = 1; seed <= 6; ++seed)
      run_model_check(capacity, 0xDE0E ^ (capacity * 1000 + seed), 4000);
}

TEST(StealDequeModel, GrowthPreservesContentsAndOrder) {
  // Fill far past the initial capacity with no pops: every item must
  // survive the ring copies, in FIFO order from the thief's side.
  StealDeque deque(2);
  Arena arena(1000);
  for (std::size_t i = 0; i < 1000; ++i) deque.push_bottom(arena.item(i));
  EXPECT_GE(deque.capacity(), 1000u);
  for (std::size_t i = 0; i < 1000; ++i) {
    void* out = nullptr;
    ASSERT_EQ(deque.steal(&out), StealDeque::StealResult::Ok) << i;
    ASSERT_EQ(arena.index(out), i);
  }
  void* out = nullptr;
  EXPECT_EQ(deque.steal(&out), StealDeque::StealResult::Empty);
}

TEST(StealDequeModel, InterleavedGrowthKeepsLiveRange) {
  // Alternate growth bursts with partial drains so the copied window
  // [top, bottom) starts at many different offsets.
  StealDeque deque(2);
  std::deque<void*> model;
  Arena arena(200 * 41);  // rounds * max burst: never outgrown
  std::size_t next = 0;
  Prng rng(0x6B0B);
  for (int round = 0; round < 200; ++round) {
    const std::size_t burst = 1 + rng.next_below(40);
    for (std::size_t i = 0; i < burst; ++i) {
      void* item = arena.item(next++);
      model.push_back(item);
      deque.push_bottom(item);
    }
    const std::size_t drain = rng.next_below(burst + 4);
    for (std::size_t i = 0; i < drain && !model.empty(); ++i) {
      if (rng.next_bool(0.5)) {
        ASSERT_EQ(model.back(), deque.pop_bottom());
        model.pop_back();
      } else {
        void* out = nullptr;
        ASSERT_EQ(deque.steal(&out), StealDeque::StealResult::Ok);
        ASSERT_EQ(model.front(), out);
        model.pop_front();
      }
    }
  }
  while (!model.empty()) {
    ASSERT_EQ(model.back(), deque.pop_bottom());
    model.pop_back();
  }
  EXPECT_EQ(deque.pop_bottom(), nullptr);
}

// ---------------------------------------------------------------------
// Three-thread hammer, designed to run under TSan: one owner pushing and
// popping at the bottom, two thieves stealing concurrently. The
// linearizability check is on the observed pop/steal sets: every pushed
// item is claimed exactly once (owner xor one thief xor final drain),
// nothing is invented, nothing is lost, and each thief's steal sequence is
// strictly increasing in push order (top only ever advances).
// SDAF_STRESS_SECONDS scales it up for tools/ci.sh --stress.
// ---------------------------------------------------------------------

void run_hammer(std::uint64_t seed, double seconds, std::size_t capacity) {
  StealDeque deque(capacity);
  constexpr std::size_t kBatch = 512;
  Arena arena(kBatch);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> round{0};
  // Claim slots: claimed[i] counts how many threads took item i this
  // round; any value > 1 is a double-delivery, caught immediately.
  std::vector<std::atomic<std::uint32_t>> claimed(kBatch);
  std::atomic<std::size_t> claimed_total{0};
  std::atomic<bool> double_claim{false};
  std::atomic<bool> bad_order{false};

  auto claim = [&](void* item) {
    const std::size_t i = arena.index(item);
    if (claimed[i].fetch_add(1, std::memory_order_relaxed) != 0)
      double_claim.store(true, std::memory_order_relaxed);
    claimed_total.fetch_add(1, std::memory_order_acq_rel);
  };

  auto thief = [&](std::uint64_t thief_seed) {
    Prng rng(thief_seed);
    std::uint64_t seen_round = 0;
    std::size_t last_index = 0;
    bool have_last = false;
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t r = round.load(std::memory_order_acquire);
      if (r != seen_round) {  // new batch: push order restarts
        seen_round = r;
        have_last = false;
      }
      void* out = nullptr;
      switch (deque.steal(&out)) {
        case StealDeque::StealResult::Ok: {
          const std::size_t i = arena.index(out);
          // Within one round a thief's steals come off a monotonically
          // advancing top, so its observed push indices must increase.
          if (have_last && i <= last_index)
            bad_order.store(true, std::memory_order_relaxed);
          last_index = i;
          have_last = true;
          claim(out);
          break;
        }
        case StealDeque::StealResult::Empty:
          std::this_thread::yield();  // 1-CPU friendly
          break;
        case StealDeque::StealResult::Contended:
          if (rng.next_bool(0.5)) std::this_thread::yield();
          break;
      }
    }
  };

  std::thread t1([&] { thief(seed ^ 0x1111); });
  std::thread t2([&] { thief(seed ^ 0x2222); });

  // Owner (this thread): rounds of push-all / mixed pop+work until every
  // item of the round is claimed by someone.
  Prng rng(seed);
  Stopwatch clock;
  int rounds = 0;
  while (clock.elapsed_seconds() < seconds || rounds == 0) {
    for (auto& c : claimed) c.store(0, std::memory_order_relaxed);
    claimed_total.store(0, std::memory_order_release);
    round.fetch_add(1, std::memory_order_acq_rel);
    std::size_t pushed = 0;
    while (pushed < kBatch) {
      const std::size_t burst =
          std::min<std::size_t>(1 + rng.next_below(16), kBatch - pushed);
      for (std::size_t i = 0; i < burst; ++i)
        deque.push_bottom(arena.item(pushed + i));
      pushed += burst;
      // Interleave owner pops so the last-item CAS race actually runs.
      const std::size_t pops = rng.next_below(burst + 1);
      for (std::size_t i = 0; i < pops; ++i) {
        if (void* item = deque.pop_bottom()) claim(item);
      }
    }
    // Drain the remainder (owner side) and wait for in-flight steals.
    while (claimed_total.load(std::memory_order_acquire) < kBatch) {
      if (void* item = deque.pop_bottom())
        claim(item);
      else
        std::this_thread::yield();
    }
    ASSERT_FALSE(double_claim.load()) << "item delivered twice";
    ASSERT_FALSE(bad_order.load()) << "thief observed non-monotonic steals";
    // Exactly-once: every claim counter is exactly 1.
    for (std::size_t i = 0; i < kBatch; ++i)
      ASSERT_EQ(claimed[i].load(std::memory_order_relaxed), 1u)
          << "item " << i << " round " << rounds;
    ++rounds;
  }
  stop.store(true, std::memory_order_release);
  t1.join();
  t2.join();
  EXPECT_EQ(deque.pop_bottom(), nullptr);
}

TEST(StealDequeHammer, OwnerVersusTwoThievesExactlyOnce) {
  double seconds = 1.0;
  if (const char* env = std::getenv("SDAF_STRESS_SECONDS"))
    seconds = std::strtod(env, nullptr) / 2;  // shared budget with the next
  std::uint64_t seed = 0x57EA1;
  if (const char* env = std::getenv("SDAF_STRESS_SEED"))
    seed = std::strtoull(env, nullptr, 0);
  run_hammer(seed, seconds, /*capacity=*/64);
}

TEST(StealDequeHammer, TinyRingForcesConcurrentGrowth) {
  // Capacity 2: every round grows the ring several times while thieves
  // hold stale array pointers -- the retire-chain path under fire.
  double seconds = 1.0;
  if (const char* env = std::getenv("SDAF_STRESS_SECONDS"))
    seconds = std::strtod(env, nullptr) / 2;
  std::uint64_t seed = 0x6120;
  if (const char* env = std::getenv("SDAF_STRESS_SEED"))
    seed = std::strtoull(env, nullptr, 0);
  run_hammer(seed, seconds, /*capacity=*/2);
}

}  // namespace
}  // namespace sdaf::runtime
