#include "src/graph/subgraph.h"

#include <gtest/gtest.h>

#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

TEST(Subgraph, ExtractsEdgeInduced) {
  const StreamGraph g = workloads::fig3_cycle();
  // Take the left side: a->b, b->e, e->f (edge ids 0, 2, 4).
  const Subgraph sub = extract_subgraph(g, {0, 2, 4});
  EXPECT_EQ(sub.graph.edge_count(), 3u);
  EXPECT_EQ(sub.graph.node_count(), 4u);  // a, b, e, f
  EXPECT_EQ(sub.orig_edge, (std::vector<EdgeId>{0, 2, 4}));
  // Buffers preserved.
  EXPECT_EQ(sub.graph.edge(0).buffer, g.edge(0).buffer);
}

TEST(Subgraph, MappingsAreInverse) {
  const StreamGraph g = workloads::fig4_butterfly();
  const Subgraph sub = extract_subgraph(g, {2, 3, 4, 5});
  for (NodeId sn = 0; sn < sub.graph.node_count(); ++sn)
    EXPECT_EQ(sub.to_sub[sub.orig_node[sn]], sn);
  for (NodeId n = 0; n < g.node_count(); ++n)
    if (sub.to_sub[n] != kNoNode)
      EXPECT_EQ(sub.orig_node[sub.to_sub[n]], n);
}

TEST(Subgraph, PreservesNames) {
  const StreamGraph g = workloads::fig2_triangle();
  const Subgraph sub = extract_subgraph(g, {0});
  EXPECT_EQ(sub.graph.node_name(0), "A");
  EXPECT_EQ(sub.graph.node_name(1), "B");
}

TEST(Subgraph, AbsentNodesMarked) {
  const StreamGraph g = workloads::fig2_triangle();
  const Subgraph sub = extract_subgraph(g, {0});  // A->B only
  EXPECT_EQ(sub.to_sub[2], kNoNode);              // C absent
}

TEST(Subgraph, ParallelEdgesSurvive) {
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_edge(a, b, 1);
  g.add_edge(a, b, 2);
  const Subgraph sub = extract_subgraph(g, {0, 1});
  EXPECT_EQ(sub.graph.edge_count(), 2u);
  EXPECT_EQ(sub.graph.node_count(), 2u);
}

}  // namespace
}  // namespace sdaf
