#include "src/intervals/propagation_sp.h"

#include <gtest/gtest.h>

#include "src/intervals/baseline.h"
#include "src/spdag/recognizer.h"
#include "src/support/prng.h"
#include "src/workloads/random_sp.h"
#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

IntervalMap setivals_for(const StreamGraph& g) {
  const auto rec = recognize_sp(g);
  EXPECT_TRUE(rec.is_sp);
  return propagation_intervals_sp(g, rec.tree);
}

TEST(SetIvals, Fig3MatchesPaper) {
  const auto iv = setivals_for(workloads::fig3_cycle());
  EXPECT_EQ(iv[0], Rational(6));  // [ab]
  EXPECT_EQ(iv[1], Rational(8));  // [ac]
  EXPECT_TRUE(iv[2].is_infinite());
  EXPECT_TRUE(iv[3].is_infinite());
  EXPECT_TRUE(iv[4].is_infinite());
  EXPECT_TRUE(iv[5].is_infinite());
}

TEST(SetIvals, Triangle) {
  const auto iv = setivals_for(workloads::fig2_triangle(2, 3, 5));
  EXPECT_EQ(iv[0], Rational(5));
  EXPECT_TRUE(iv[1].is_infinite());
  EXPECT_EQ(iv[2], Rational(5));
}

TEST(SetIvals, PipelineAllInfinite) {
  EXPECT_TRUE(setivals_for(workloads::pipeline(7)).all_infinite());
}

TEST(SetIvals, SplitJoinSourceEdgesOnly) {
  const StreamGraph g = workloads::fig1_splitjoin(3);
  const auto iv = setivals_for(g);
  // Cycle pairs the two branches: only A's out-edges constrained, by the
  // other branch's total (3+3=6).
  EXPECT_EQ(iv[0], Rational(6));
  EXPECT_EQ(iv[1], Rational(6));
  EXPECT_TRUE(iv[2].is_infinite());
  EXPECT_TRUE(iv[3].is_infinite());
}

TEST(SetIvals, NestedParallelTakesTightest) {
  // parallel(e(10), series(e(1), parallel(e(2), e(3)), e(1))): the inner
  // bundle's edges see both the inner sibling and the outer cycle.
  const auto built = build_sp(SpSpec::parallel(
      {SpSpec::edge(10),
       SpSpec::series({SpSpec::edge(1),
                       SpSpec::parallel({SpSpec::edge(2), SpSpec::edge(3)}),
                       SpSpec::edge(1)})}));
  const auto iv = propagation_intervals_sp(built.graph, built.tree);
  const auto exact = propagation_intervals_exact(built.graph);
  EXPECT_EQ(iv, exact);
}

TEST(SetIvals, MultiEdgeBaseCase) {
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_edge(a, b, 4);
  g.add_edge(a, b, 6);
  g.add_edge(a, b, 9);
  const auto iv = setivals_for(g);
  // Paper base case: [e] = min buffer among the *other* parallel edges.
  EXPECT_EQ(iv[0], Rational(6));
  EXPECT_EQ(iv[1], Rational(4));
  EXPECT_EQ(iv[2], Rational(4));
}

class PropagationEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

// The heart of Section IV.A: SETIVALS (O(|G|)), the naive post-order
// variant (O(|G|^2)) and the exponential cycle enumeration must agree on
// every SP-DAG.
TEST_P(PropagationEquivalence, AllThreeAlgorithmsAgree) {
  Prng rng(GetParam());
  for (const std::size_t edges : {2u, 4u, 8u, 16u, 28u}) {
    workloads::RandomSpOptions opt;
    opt.target_edges = edges;
    opt.max_buffer = 9;
    const auto built = workloads::random_sp(rng, opt);
    const auto fast = propagation_intervals_sp(built.graph, built.tree);
    const auto naive =
        propagation_intervals_sp_naive(built.graph, built.tree);
    const auto exact = propagation_intervals_exact(built.graph);
    EXPECT_EQ(fast, naive) << "SETIVALS vs naive, |E|=" << edges;
    EXPECT_EQ(fast, exact) << "SETIVALS vs exact, |E|=" << edges;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationEquivalence,
                         ::testing::Range<std::uint64_t>(0, 40));

// Only nodes with >= 2 outgoing edges on some cycle may need to send
// dummies (the Propagation Algorithm's premise).
TEST(SetIvals, OnlySplitNodesGetFiniteIntervals) {
  Prng rng(404);
  for (int trial = 0; trial < 20; ++trial) {
    workloads::RandomSpOptions opt;
    opt.target_edges = 15;
    const auto built = workloads::random_sp(rng, opt);
    const auto iv = propagation_intervals_sp(built.graph, built.tree);
    for (EdgeId e = 0; e < built.graph.edge_count(); ++e) {
      if (iv[e].is_finite())
        EXPECT_GE(built.graph.out_degree(built.graph.edge(e).from), 2u);
    }
  }
}

}  // namespace
}  // namespace sdaf
