// The wire codec (src/net/frame.h): every frame type round-trips bit for
// bit; every decoder rejects truncation, trailing garbage, out-of-range
// enums and resource-bomb counts without crashing (the server feeds these
// decoders adversarial bytes directly); and the defensive topology parser
// accepts exactly what graph::to_text emits while rejecting everything
// graph::from_text would abort on.
#include "src/net/frame.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "src/graph/io.h"
#include "src/net/workload.h"
#include "src/workloads/topologies.h"

namespace sdaf::net {
namespace {

using runtime::Value;

std::vector<std::uint8_t> payload_of(const Writer& w) { return w.bytes(); }

// Every strict prefix of a valid payload must fail to decode, and so must
// the payload with a trailing byte: decoders demand exact consumption.
template <typename Decoder>
void expect_exact_consumption(const std::vector<std::uint8_t>& bytes,
                              Decoder decode, const char* label) {
  ASSERT_TRUE(decode(bytes.data(), bytes.size()).has_value()) << label;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(decode(bytes.data(), cut).has_value())
        << label << " prefix " << cut;
  }
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(decode(padded.data(), padded.size()).has_value())
      << label << " trailing byte";
}

TEST(NetFrame, HeaderRoundTrip) {
  FrameHeader h;
  h.length = 12345;
  h.type = FrameType::PushBatch;
  h.flags = 0;
  h.stream = 0xBEEF;
  std::uint8_t buf[kHeaderSize];
  encode_header(h, buf);
  const auto back = decode_header(buf);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->length, h.length);
  EXPECT_EQ(back->type, h.type);
  EXPECT_EQ(back->flags, h.flags);
  EXPECT_EQ(back->stream, h.stream);
}

TEST(NetFrame, HeaderRejectsOversizeAndBadType) {
  FrameHeader h;
  h.type = FrameType::Hello;
  std::uint8_t buf[kHeaderSize];
  h.length = kMaxPayload + 1;
  encode_header(h, buf);
  EXPECT_FALSE(decode_header(buf).has_value());

  h.length = 0;
  encode_header(h, buf);
  buf[4] = 0;  // type below the known range
  EXPECT_FALSE(decode_header(buf).has_value());
  buf[4] = 20;  // type above the known range (RestoreOk = 19 is the top)
  EXPECT_FALSE(decode_header(buf).has_value());
}

TEST(NetFrame, HelloRoundTrip) {
  HelloFrame f;
  f.version_min = 1;
  f.version_max = 7;
  Writer w;
  encode(f, w);
  const auto bytes = payload_of(w);
  const auto back = decode_hello(bytes.data(), bytes.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->magic, kMagic);
  EXPECT_EQ(back->version_min, 1);
  EXPECT_EQ(back->version_max, 7);
  expect_exact_consumption(bytes, decode_hello, "Hello");
}

TEST(NetFrame, OpenRoundTrip) {
  OpenFrame f;
  f.backend = 2;
  f.mode = 1;
  f.kernel = KernelKind::Wedge;
  f.pass_rate = 0.625;
  f.seed = 0xDEADBEEFCAFEull;
  f.wedge_prefix = 100;
  f.feed_capacity = 512;
  f.egress_capacity = 2048;
  f.batch = 16;
  f.tenant = "tenant-a";
  f.topology = "node a\nnode b\nedge a b 4\n";
  Writer w;
  encode(f, w);
  const auto bytes = payload_of(w);
  const auto back = decode_open(bytes.data(), bytes.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->backend, f.backend);
  EXPECT_EQ(back->mode, f.mode);
  EXPECT_EQ(back->kernel, f.kernel);
  EXPECT_EQ(back->pass_rate, f.pass_rate);
  EXPECT_EQ(back->seed, f.seed);
  EXPECT_EQ(back->wedge_prefix, f.wedge_prefix);
  EXPECT_EQ(back->feed_capacity, f.feed_capacity);
  EXPECT_EQ(back->egress_capacity, f.egress_capacity);
  EXPECT_EQ(back->batch, f.batch);
  EXPECT_EQ(back->tenant, f.tenant);
  EXPECT_EQ(back->topology, f.topology);
  expect_exact_consumption(bytes, decode_open, "Open");
}

TEST(NetFrame, OpenRejectsOutOfRangeFields) {
  const OpenFrame good;
  const auto encode_with = [](OpenFrame f) {
    Writer w;
    encode(f, w);
    return w.take();
  };
  {
    OpenFrame f = good;
    f.backend = 3;
    const auto b = encode_with(f);
    EXPECT_FALSE(decode_open(b.data(), b.size()).has_value());
  }
  {
    OpenFrame f = good;
    f.mode = 3;
    const auto b = encode_with(f);
    EXPECT_FALSE(decode_open(b.data(), b.size()).has_value());
  }
  {
    OpenFrame f = good;
    f.kernel = static_cast<KernelKind>(9);
    const auto b = encode_with(f);
    EXPECT_FALSE(decode_open(b.data(), b.size()).has_value());
  }
  {
    OpenFrame f = good;
    f.pass_rate = 1.5;
    const auto b = encode_with(f);
    EXPECT_FALSE(decode_open(b.data(), b.size()).has_value());
  }
  {
    OpenFrame f = good;
    f.feed_capacity = 0;  // a zero-capacity feed channel cannot exist
    const auto b = encode_with(f);
    EXPECT_FALSE(decode_open(b.data(), b.size()).has_value());
  }
  {
    OpenFrame f = good;
    f.feed_capacity = (1u << 20) + 1;  // resource bomb
    const auto b = encode_with(f);
    EXPECT_FALSE(decode_open(b.data(), b.size()).has_value());
  }
  {
    OpenFrame f = good;
    f.batch = 0;
    const auto b = encode_with(f);
    EXPECT_FALSE(decode_open(b.data(), b.size()).has_value());
  }
}

TEST(NetFrame, PushBatchRoundTripAllValueKinds) {
  PushBatchFrame f;
  f.port = 3;
  f.values.emplace_back();                               // none (firing token)
  f.values.emplace_back(std::int64_t{-42});              // i64
  f.values.emplace_back(3.5);                            // f64
  f.values.emplace_back(std::string("hello, stream"));   // string
  Writer w;
  encode(f, w);
  const auto bytes = payload_of(w);
  const auto back = decode_push_batch(bytes.data(), bytes.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->port, 3);
  ASSERT_EQ(back->values.size(), 4u);
  EXPECT_FALSE(back->values[0].has_value());
  EXPECT_EQ(back->values[1].as<std::int64_t>(), -42);
  EXPECT_EQ(back->values[2].as<double>(), 3.5);
  EXPECT_EQ(back->values[3].as<std::string>(), "hello, stream");
  expect_exact_consumption(bytes, decode_push_batch, "PushBatch");
}

TEST(NetFrame, PushBatchRejectsCountBomb) {
  // port + a declared count far beyond the actual payload bytes must be
  // rejected before any allocation sized by the count.
  Writer w;
  w.u16(0);
  w.u32(0x7FFFFFFF);
  const auto bytes = payload_of(w);
  EXPECT_FALSE(decode_push_batch(bytes.data(), bytes.size()).has_value());
}

TEST(NetFrame, DeliverRoundTrip) {
  DeliverFrame f;
  f.port = 1;
  f.ended = 1;
  f.items.push_back({7, Value(std::int64_t{70})});
  f.items.push_back({8, Value(std::string("tail"))});
  Writer w;
  encode(f, w);
  const auto bytes = payload_of(w);
  const auto back = decode_deliver(bytes.data(), bytes.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->port, 1);
  EXPECT_EQ(back->ended, 1);
  ASSERT_EQ(back->items.size(), 2u);
  EXPECT_EQ(back->items[0].seq, 7u);
  EXPECT_EQ(back->items[0].value.as<std::int64_t>(), 70);
  EXPECT_EQ(back->items[1].seq, 8u);
  EXPECT_EQ(back->items[1].value.as<std::string>(), "tail");
  expect_exact_consumption(bytes, decode_deliver, "Deliver");
}

TEST(NetFrame, VerdictRoundTripIncludingDeadlockDump) {
  VerdictFrame f;
  f.report.backend = exec::Backend::Pooled;
  f.report.completed = false;
  f.report.deadlocked = true;
  f.report.sweeps = 99;
  f.report.edges = {{10, 2, 4}, {0, 7, 1}};
  f.report.fires = {5, 6, 7};
  f.report.sink_data = {0, 0, 4};
  f.report.state_dump = "node 2 blocked on edge 1\n";
  Writer w;
  encode(f, w);
  const auto bytes = payload_of(w);
  const auto back = decode_verdict(bytes.data(), bytes.size());
  ASSERT_TRUE(back.has_value());
  const exec::RunReport& r = back->report;
  EXPECT_EQ(r.backend, exec::Backend::Pooled);
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_EQ(r.sweeps, 99u);
  ASSERT_EQ(r.edges.size(), 2u);
  EXPECT_EQ(r.edges[0].data, 10u);
  EXPECT_EQ(r.edges[0].dummies, 2u);
  EXPECT_EQ(r.edges[0].max_occupancy, 4);
  EXPECT_EQ(r.edges[1].dummies, 7u);
  EXPECT_EQ(r.fires, f.report.fires);
  EXPECT_EQ(r.sink_data, f.report.sink_data);
  EXPECT_EQ(r.state_dump, f.report.state_dump);
  expect_exact_consumption(bytes, decode_verdict, "Verdict");
}

TEST(NetFrame, SimpleFramesRoundTrip) {
  {
    HelloOkFrame f;
    f.version = 1;
    Writer w;
    encode(f, w);
    const auto b = payload_of(w);
    ASSERT_TRUE(decode_hello_ok(b.data(), b.size()).has_value());
    expect_exact_consumption(b, decode_hello_ok, "HelloOk");
  }
  {
    OpenOkFrame f;
    f.inputs = 2;
    f.outputs = 3;
    f.cache_hit = 1;
    Writer w;
    encode(f, w);
    const auto b = payload_of(w);
    const auto back = decode_open_ok(b.data(), b.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->inputs, 2);
    EXPECT_EQ(back->outputs, 3);
    EXPECT_EQ(back->cache_hit, 1);
    expect_exact_consumption(b, decode_open_ok, "OpenOk");
  }
  {
    PushAckFrame f;
    f.accepted = 17;
    f.ended = 1;
    Writer w;
    encode(f, w);
    const auto b = payload_of(w);
    const auto back = decode_push_ack(b.data(), b.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->accepted, 17u);
    EXPECT_EQ(back->ended, 1);
    expect_exact_consumption(b, decode_push_ack, "PushAck");
  }
  {
    PollFrame f;
    f.port = 2;
    f.max_items = 64;
    Writer w;
    encode(f, w);
    const auto b = payload_of(w);
    const auto back = decode_poll(b.data(), b.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->port, 2);
    EXPECT_EQ(back->max_items, 64u);
    expect_exact_consumption(b, decode_poll, "Poll");
  }
  {
    CloseFrame f;
    f.port = 5;
    Writer w;
    encode(f, w);
    const auto b = payload_of(w);
    ASSERT_TRUE(decode_close(b.data(), b.size()).has_value());
    expect_exact_consumption(b, decode_close, "Close");
  }
  {
    StatsOkFrame f;
    f.prometheus = "# HELP x y\n# TYPE x counter\nx_total 1\n";
    Writer w;
    encode(f, w);
    const auto b = payload_of(w);
    const auto back = decode_stats_ok(b.data(), b.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->prometheus, f.prometheus);
    expect_exact_consumption(b, decode_stats_ok, "StatsOk");
  }
  {
    ErrorFrame f;
    f.code = ErrorCode::BadTopology;
    f.message = "cycle";
    Writer w;
    encode(f, w);
    const auto b = payload_of(w);
    const auto back = decode_error(b.data(), b.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->code, ErrorCode::BadTopology);
    EXPECT_EQ(back->message, "cycle");
    expect_exact_consumption(b, decode_error, "Error");
  }
}

TEST(NetFrame, SnapshotFramesRoundTrip) {
  {
    SnapshotOkFrame pending;  // complete = 0, no bytes
    Writer w;
    encode(pending, w);
    const auto b = payload_of(w);
    const auto back = decode_snapshot_ok(b.data(), b.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->complete, 0);
    EXPECT_TRUE(back->snapshot.empty());
    expect_exact_consumption(b, decode_snapshot_ok, "SnapshotOk pending");
  }
  {
    SnapshotOkFrame f;
    f.complete = 1;
    f.snapshot = std::string("\x01\x00opaque blob with \xff bytes", 26);
    Writer w;
    encode(f, w);
    const auto b = payload_of(w);
    const auto back = decode_snapshot_ok(b.data(), b.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->complete, 1);
    EXPECT_EQ(back->snapshot, f.snapshot);
    expect_exact_consumption(b, decode_snapshot_ok, "SnapshotOk complete");
  }
  {
    // complete and payload must agree: a "pending" frame carrying bytes
    // (or a "complete" frame without them) is malformed.
    SnapshotOkFrame f;
    f.complete = 0;
    f.snapshot = "stray";
    Writer w;
    encode(f, w);
    const auto b = payload_of(w);
    EXPECT_FALSE(decode_snapshot_ok(b.data(), b.size()).has_value());
  }
  {
    RestoreFrame f;
    f.open.backend = 1;
    f.open.mode = 2;
    f.open.kernel = KernelKind::Relay;
    f.open.pass_rate = 0.5;
    f.open.topology = "node a\nnode b\nedge a b 4\n";
    f.snapshot = std::string("versioned snapshot bytes");
    Writer w;
    encode(f, w);
    const auto b = payload_of(w);
    const auto back = decode_restore(b.data(), b.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->open.backend, 1);
    EXPECT_EQ(back->open.mode, 2);
    EXPECT_EQ(back->open.kernel, KernelKind::Relay);
    EXPECT_EQ(back->open.topology, f.open.topology);
    EXPECT_EQ(back->snapshot, f.snapshot);
    expect_exact_consumption(b, decode_restore, "Restore");
  }
  {
    // A Restore without snapshot bytes is meaningless.
    RestoreFrame f;
    f.snapshot.clear();
    Writer w;
    encode(f, w);
    const auto b = payload_of(w);
    EXPECT_FALSE(decode_restore(b.data(), b.size()).has_value());
  }
  {
    // Out-of-range Open fields are policed inside Restore too.
    RestoreFrame f;
    f.open.backend = 3;
    f.snapshot = "x";
    Writer w;
    encode(f, w);
    const auto b = payload_of(w);
    EXPECT_FALSE(decode_restore(b.data(), b.size()).has_value());
  }
  {
    RestoreOkFrame f;
    f.inputs = 2;
    f.outputs = 1;
    f.cache_hit = 1;
    f.epoch = 3;
    Writer w;
    encode(f, w);
    const auto b = payload_of(w);
    const auto back = decode_restore_ok(b.data(), b.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->inputs, 2);
    EXPECT_EQ(back->outputs, 1);
    EXPECT_EQ(back->cache_hit, 1);
    EXPECT_EQ(back->epoch, 3u);
    expect_exact_consumption(b, decode_restore_ok, "RestoreOk");
  }
}

// Property test: no decoder may crash, hang, or allocate absurdly on
// arbitrary bytes -- at worst it returns nullopt. This is exactly what a
// malicious client can feed the server after the (valid) header.
TEST(NetFrame, DecodersSurviveRandomBytes) {
  std::mt19937_64 rng(0xF00DF00D);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t n = rng() % 256;
    std::vector<std::uint8_t> buf(n);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
    const std::uint8_t* p = buf.data();
    (void)decode_hello(p, n);
    (void)decode_hello_ok(p, n);
    (void)decode_open(p, n);
    (void)decode_open_ok(p, n);
    (void)decode_push_batch(p, n);
    (void)decode_push_ack(p, n);
    (void)decode_poll(p, n);
    (void)decode_deliver(p, n);
    (void)decode_close(p, n);
    (void)decode_verdict(p, n);
    (void)decode_stats_ok(p, n);
    (void)decode_error(p, n);
    (void)decode_snapshot_ok(p, n);
    (void)decode_restore(p, n);
    (void)decode_restore_ok(p, n);
  }
}

// Mutation property: flipping any single byte of a valid Open payload
// either still decodes (the flip hit a value byte) or returns nullopt --
// never crashes.
TEST(NetFrame, OpenSurvivesSingleByteMutations) {
  OpenFrame f;
  f.topology = "node a\nnode b\nedge a b 2\n";
  Writer w;
  encode(f, w);
  const auto bytes = payload_of(w);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (const std::uint8_t flip : {0x01, 0x80, 0xFF}) {
      std::vector<std::uint8_t> mut = bytes;
      mut[i] ^= flip;
      (void)decode_open(mut.data(), mut.size());
    }
  }
}

TEST(NetFrame, MakeFrameProducesHeaderPlusPayload) {
  Writer w;
  w.u32(0xAABBCCDD);
  const auto frame = make_frame(FrameType::Poll, 9, std::move(w));
  ASSERT_EQ(frame.size(), kHeaderSize + 4);
  const auto h = decode_header(frame.data());
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->length, 4u);
  EXPECT_EQ(h->type, FrameType::Poll);
  EXPECT_EQ(h->stream, 9);

  // Empty payload is legal (Finish, Stats).
  const auto empty = make_frame(FrameType::Finish, 1, Writer{});
  EXPECT_EQ(empty.size(), kHeaderSize);
}

// --- the defensive topology parser --------------------------------------

TEST(NetFrame, ParseTopologyAcceptsToTextOutput) {
  for (const StreamGraph& g :
       {workloads::pipeline(4, 3), workloads::fig1_splitjoin(),
        workloads::fig2_triangle()}) {
    const auto parsed = parse_topology(to_text(g));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->node_count(), g.node_count());
    EXPECT_EQ(parsed->edge_count(), g.edge_count());
    for (std::size_t e = 0; e < g.edge_count(); ++e) {
      EXPECT_EQ(parsed->edge(e).from, g.edge(e).from);
      EXPECT_EQ(parsed->edge(e).to, g.edge(e).to);
      EXPECT_EQ(parsed->edge(e).buffer, g.edge(e).buffer);
    }
  }
}

TEST(NetFrame, ParseTopologyRejectsMalformedInput) {
  // Every one of these aborts the process if fed to graph::from_text.
  EXPECT_FALSE(parse_topology("").has_value());
  EXPECT_FALSE(parse_topology("nonsense a b\n").has_value());
  EXPECT_FALSE(parse_topology("node a\nnode a\n").has_value());  // duplicate
  EXPECT_FALSE(parse_topology("node a\nedge a ghost 2\n").has_value());
  EXPECT_FALSE(parse_topology("node a\nedge a a 2\n").has_value());  // loop
  EXPECT_FALSE(parse_topology("node a\nnode b\nedge a b 0\n").has_value());
  EXPECT_FALSE(parse_topology("node a\nnode b\nedge a b -3\n").has_value());
  EXPECT_FALSE(
      parse_topology("node a\nnode b\nedge a b 99999999\n").has_value());
  // A 2-cycle passes per-line validation but must fail acyclicity.
  EXPECT_FALSE(
      parse_topology("node a\nnode b\nedge a b 2\nedge b a 2\n").has_value());
}

}  // namespace
}  // namespace sdaf::net
