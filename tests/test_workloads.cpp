#include <gtest/gtest.h>

#include "src/graph/cycles.h"
#include "src/graph/validate.h"
#include "src/support/prng.h"
#include "src/workloads/filters.h"
#include "src/workloads/random_ladder.h"
#include "src/workloads/random_sp.h"
#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

TEST(Topologies, ShapesAndSizes) {
  EXPECT_EQ(workloads::fig1_splitjoin().edge_count(), 4u);
  EXPECT_EQ(workloads::fig2_triangle().edge_count(), 3u);
  EXPECT_EQ(workloads::fig3_cycle().edge_count(), 6u);
  EXPECT_EQ(workloads::fig4_left().edge_count(), 5u);
  EXPECT_EQ(workloads::fig4_butterfly().edge_count(), 8u);
  EXPECT_EQ(workloads::butterfly_rewrite().edge_count(), 8u);
  EXPECT_EQ(workloads::pipeline(7).edge_count(), 6u);
  EXPECT_EQ(workloads::splitjoin(3, 2).edge_count(), 9u);
  EXPECT_EQ(workloads::fig5_ladder().edge_count(), 8u);
}

TEST(Topologies, Fig3BuffersMatchPaper) {
  const StreamGraph g = workloads::fig3_cycle();
  EXPECT_EQ(g.edge(0).buffer, 2);  // ab
  EXPECT_EQ(g.edge(1).buffer, 3);  // ac
  EXPECT_EQ(g.edge(2).buffer, 5);  // be
  EXPECT_EQ(g.edge(3).buffer, 1);  // cd
  EXPECT_EQ(g.edge(4).buffer, 1);  // ef
  EXPECT_EQ(g.edge(5).buffer, 2);  // df
}

TEST(RandomSp, HitsTargetEdgeCount) {
  Prng rng(1);
  for (const std::size_t target : {1u, 2u, 7u, 20u, 64u}) {
    workloads::RandomSpOptions opt;
    opt.target_edges = target;
    const auto built = workloads::random_sp(rng, opt);
    EXPECT_EQ(built.graph.edge_count(), target);
    EXPECT_TRUE(validate(built.graph).two_terminal());
  }
}

TEST(RandomSp, RespectsBufferBound) {
  Prng rng(2);
  workloads::RandomSpOptions opt;
  opt.target_edges = 40;
  opt.max_buffer = 5;
  const auto built = workloads::random_sp(rng, opt);
  for (EdgeId e = 0; e < built.graph.edge_count(); ++e) {
    EXPECT_GE(built.graph.edge(e).buffer, 1);
    EXPECT_LE(built.graph.edge(e).buffer, 5);
  }
}

TEST(RandomLadder, AlwaysValidCs4) {
  Prng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    workloads::RandomLadderOptions opt;
    opt.rungs = 1 + static_cast<std::size_t>(trial % 5);
    opt.component_edges = 1 + static_cast<std::size_t>(trial % 3);
    const auto g = workloads::random_ladder(rng, opt);
    EXPECT_TRUE(validate(g).two_terminal());
    EXPECT_TRUE(is_cs4_by_enumeration(g)) << "trial " << trial;
  }
}

TEST(RandomLadder, NoSharedEndpointsWhenDisallowed) {
  Prng rng(4);
  workloads::RandomLadderOptions opt;
  opt.rungs = 4;
  opt.allow_shared_endpoints = false;
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = workloads::random_ladder(rng, opt);
    EXPECT_TRUE(is_cs4_by_enumeration(g));
  }
}

TEST(RandomCs4Chain, ValidAndConnected) {
  Prng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    workloads::RandomCs4Options opt;
    opt.components = 1 + static_cast<std::size_t>(trial % 5);
    const auto g = workloads::random_cs4_chain(rng, opt);
    EXPECT_TRUE(validate(g).two_terminal());
  }
}

TEST(RandomDag, TwoTerminalByConstruction) {
  Prng rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    const auto g = workloads::random_two_terminal_dag(rng, {});
    const auto v = validate(g);
    EXPECT_TRUE(v.acyclic);
    EXPECT_TRUE(v.single_source);
    EXPECT_TRUE(v.single_sink);
  }
}

TEST(Filters, BernoulliDeterministicAndCalibrated) {
  const auto f = workloads::bernoulli_filter(0.25, 99);
  const auto g = workloads::bernoulli_filter(0.25, 99);
  int pass = 0;
  for (std::uint64_t s = 0; s < 8000; ++s) {
    EXPECT_EQ(f(s, 0), g(s, 0));
    pass += f(s, 0) ? 1 : 0;
  }
  EXPECT_NEAR(pass / 8000.0, 0.25, 0.03);
}

TEST(Filters, BernoulliDecorrelatedAcrossSlots) {
  const auto f = workloads::bernoulli_filter(0.5, 7);
  int both = 0;
  for (std::uint64_t s = 0; s < 4000; ++s)
    if (f(s, 0) && f(s, 1)) ++both;
  EXPECT_NEAR(both / 4000.0, 0.25, 0.05);
}

TEST(Filters, PeriodicExactPattern) {
  const auto f = workloads::periodic_filter(3, 1);
  EXPECT_FALSE(f(0, 0));
  EXPECT_TRUE(f(1, 0));
  EXPECT_FALSE(f(2, 0));
  EXPECT_FALSE(f(3, 0));
  EXPECT_TRUE(f(4, 0));
}

TEST(Filters, AdversarialPrefix) {
  const auto f = workloads::adversarial_prefix_filter(1, 5);
  for (std::uint64_t s = 0; s < 5; ++s) {
    EXPECT_TRUE(f(s, 0));   // other slots unaffected
    EXPECT_FALSE(f(s, 1));  // blocked slot filtered
  }
  EXPECT_TRUE(f(5, 1));  // passes after the prefix
}

TEST(Filters, KernelBundlesSized) {
  const StreamGraph g = workloads::fig1_splitjoin();
  EXPECT_EQ(workloads::relay_kernels(g, 0.5, 1).size(), g.node_count());
  EXPECT_EQ(workloads::passthrough_kernels(g).size(), g.node_count());
}

}  // namespace
}  // namespace sdaf
