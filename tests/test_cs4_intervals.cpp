#include <gtest/gtest.h>

#include "src/cs4/decompose.h"
#include "src/intervals/baseline.h"
#include "src/support/prng.h"
#include "src/workloads/random_ladder.h"
#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

TEST(Cs4Propagation, Fig4LeftHandComputed) {
  const StreamGraph g = workloads::fig4_left(2);
  const auto a = analyze_cs4(g);
  ASSERT_TRUE(a.is_cs4);
  const auto iv = cs4_propagation_intervals(g, a);
  EXPECT_EQ(iv[0], Rational(2));  // X->a
  EXPECT_EQ(iv[1], Rational(4));  // X->b
  EXPECT_EQ(iv[2], Rational(2));  // a->b (rung)
  EXPECT_EQ(iv[3], Rational(4));  // a->Y
  EXPECT_TRUE(iv[4].is_infinite());
}

TEST(Cs4Propagation, RecurrenceMatchesOnFig4Left) {
  const StreamGraph g = workloads::fig4_left(2);
  const auto a = analyze_cs4(g);
  const auto enum_iv =
      cs4_propagation_intervals(g, a, LadderMethod::Enumeration);
  const auto rec_iv =
      cs4_propagation_intervals(g, a, LadderMethod::PaperRecurrence);
  EXPECT_EQ(enum_iv, rec_iv);
}

TEST(Cs4Propagation, SpFallbackMatchesSetivals) {
  const StreamGraph g = workloads::fig3_cycle();
  const auto a = analyze_cs4(g);
  ASSERT_TRUE(a.pure_sp);
  const auto iv = cs4_propagation_intervals(g, a);
  EXPECT_EQ(iv[0], Rational(6));
  EXPECT_EQ(iv[1], Rational(8));
}

TEST(Cs4NonProp, Fig4LeftHandComputed) {
  const StreamGraph g = workloads::fig4_left(2);
  const auto a = analyze_cs4(g);
  const auto iv = cs4_nonprop_intervals(g, a);
  EXPECT_EQ(iv[0], Rational(1));
  EXPECT_EQ(iv[1], Rational(2));
  EXPECT_EQ(iv[2], Rational(1));
  EXPECT_EQ(iv[3], Rational(2));
  EXPECT_EQ(iv[4], Rational(1));
}

class LadderIntervalProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

// Both CS4 engines must agree with the exponential baseline on random
// ladders (small enough to enumerate full-graph cycles).
TEST_P(LadderIntervalProperty, EnumMatchesExactBaseline) {
  Prng rng(GetParam() * 7 + 3);
  workloads::RandomLadderOptions opt;
  opt.rungs = 1 + GetParam() % 4;
  opt.left_interior = 1 + GetParam() % 3;
  opt.right_interior = 1 + (GetParam() / 2) % 3;
  opt.component_edges = 1 + GetParam() % 2;
  const auto g = workloads::random_ladder(rng, opt);
  const auto a = analyze_cs4(g);
  ASSERT_TRUE(a.is_cs4) << a.reason;

  const auto prop = cs4_propagation_intervals(g, a);
  const auto prop_exact = propagation_intervals_exact(g);
  EXPECT_EQ(prop, prop_exact) << "propagation mismatch";

  const auto np = cs4_nonprop_intervals(g, a);
  const auto np_exact = nonprop_intervals_exact(g);
  EXPECT_EQ(np, np_exact) << "non-propagation mismatch";
}

INSTANTIATE_TEST_SUITE_P(Seeds, LadderIntervalProperty,
                         ::testing::Range<std::uint64_t>(0, 60));

class ChainIntervalProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChainIntervalProperty, Cs4ChainMatchesExactBaseline) {
  Prng rng(GetParam() * 13 + 11);
  workloads::RandomCs4Options opt;
  opt.components = 1 + GetParam() % 3;
  opt.ladder.rungs = 1 + GetParam() % 2;
  opt.sp.target_edges = 6;
  const auto g = workloads::random_cs4_chain(rng, opt);
  const auto a = analyze_cs4(g);
  ASSERT_TRUE(a.is_cs4) << a.reason;
  EXPECT_EQ(cs4_propagation_intervals(g, a), propagation_intervals_exact(g));
  EXPECT_EQ(cs4_nonprop_intervals(g, a), nonprop_intervals_exact(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainIntervalProperty,
                         ::testing::Range<std::uint64_t>(0, 40));

class RecurrenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

// Paper recurrence vs enumeration. Without shared rung endpoints they are
// identical; with shared endpoints the (fixed-up) recurrence must never be
// looser (larger) than exact -- looser would be unsafe.
TEST_P(RecurrenceProperty, NoSharedEndpointsExactMatch) {
  Prng rng(GetParam() * 101 + 1);
  workloads::RandomLadderOptions opt;
  opt.rungs = 1 + GetParam() % 4;
  opt.allow_shared_endpoints = false;
  opt.component_edges = 1 + GetParam() % 3;
  const auto g = workloads::random_ladder(rng, opt);
  const auto a = analyze_cs4(g);
  ASSERT_TRUE(a.is_cs4) << a.reason;
  EXPECT_EQ(cs4_propagation_intervals(g, a, LadderMethod::Enumeration),
            cs4_propagation_intervals(g, a, LadderMethod::PaperRecurrence));
}

TEST_P(RecurrenceProperty, SharedEndpointsNeverLooser) {
  Prng rng(GetParam() * 103 + 29);
  workloads::RandomLadderOptions opt;
  opt.rungs = 2 + GetParam() % 4;
  opt.left_interior = 1 + GetParam() % 2;  // force sharing
  opt.right_interior = 1 + GetParam() % 2;
  opt.allow_shared_endpoints = true;
  const auto g = workloads::random_ladder(rng, opt);
  const auto a = analyze_cs4(g);
  ASSERT_TRUE(a.is_cs4) << a.reason;
  const auto exact =
      cs4_propagation_intervals(g, a, LadderMethod::Enumeration);
  const auto rec =
      cs4_propagation_intervals(g, a, LadderMethod::PaperRecurrence);
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    EXPECT_LE(rec[e], exact[e]) << "recurrence looser than exact on " << e;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecurrenceProperty,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace sdaf
