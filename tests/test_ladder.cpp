#include "src/cs4/ladder.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "src/support/prng.h"
#include "src/workloads/random_ladder.h"
#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

LadderRecognition recognize_whole(const StreamGraph& g) {
  const Skeleton s =
      extract_skeleton(g, g.unique_source(), g.unique_sink());
  std::vector<std::size_t> all(s.edges.size());
  std::iota(all.begin(), all.end(), 0u);
  return recognize_ladder(s, all, s.to_skel[g.unique_source()],
                          s.to_skel[g.unique_sink()]);
}

TEST(Ladder, RecognizesFig4Left) {
  const auto rec = recognize_whole(workloads::fig4_left(2));
  ASSERT_TRUE(rec.ladder.has_value()) << rec.reason;
  const Ladder& l = *rec.ladder;
  EXPECT_EQ(l.rungs.size(), 1u);
  EXPECT_TRUE(l.rungs[0].left_to_right ||
              !l.rungs[0].left_to_right);  // direction is side-naming relative
  EXPECT_EQ(l.left.size() + l.right.size(), 6u);  // 3 + 3 (X,interior,Y)
  EXPECT_EQ(l.cycles.size(), 3u);
}

TEST(Ladder, RecognizesFig5) {
  const auto rec = recognize_whole(workloads::fig5_ladder());
  ASSERT_TRUE(rec.ladder.has_value()) << rec.reason;
  EXPECT_EQ(rec.ladder->rungs.size(), 2u);
}

TEST(Ladder, RecognizesButterflyRewrite) {
  const Skeleton s = [&] {
    const auto g = workloads::butterfly_rewrite(2);
    return extract_skeleton(g, g.unique_source(), g.unique_sink());
  }();
  std::vector<std::size_t> all(s.edges.size());
  std::iota(all.begin(), all.end(), 0u);
  // The rewrite is one ladder block spanning the whole skeleton.
  const auto g = workloads::butterfly_rewrite(2);
  const auto rec = recognize_ladder(
      s, all, s.to_skel[g.unique_source()], s.to_skel[g.unique_sink()]);
  ASSERT_TRUE(rec.ladder.has_value()) << rec.reason;
  EXPECT_EQ(rec.ladder->rungs.size(), 2u);  // a->d and d->c
}

TEST(Ladder, RejectsButterfly) {
  const auto rec = recognize_whole(workloads::fig4_butterfly(2));
  EXPECT_FALSE(rec.ladder.has_value());
  EXPECT_NE(rec.reason.find("not CS4"), std::string::npos);
}

TEST(Ladder, RejectsCrossingRungs) {
  // Sides X-u1-u2-Y and X-v1-v2-Y with rungs u1->v2 and u2->v1: crossing.
  StreamGraph g;
  const NodeId x = g.add_node("X");
  const NodeId u1 = g.add_node("u1");
  const NodeId u2 = g.add_node("u2");
  const NodeId v1 = g.add_node("v1");
  const NodeId v2 = g.add_node("v2");
  const NodeId y = g.add_node("Y");
  g.add_edge(x, u1, 1);
  g.add_edge(u1, u2, 1);
  g.add_edge(u2, y, 1);
  g.add_edge(x, v1, 1);
  g.add_edge(v1, v2, 1);
  g.add_edge(v2, y, 1);
  g.add_edge(u1, v2, 1);
  g.add_edge(u2, v1, 1);
  const auto rec = recognize_whole(g);
  EXPECT_FALSE(rec.ladder.has_value());
}

TEST(Ladder, AcceptsSharedEndpointRungs) {
  // Two rungs out of the same left vertex (Fig 6's u_i = u_{i+1} case).
  StreamGraph g;
  const NodeId x = g.add_node("X");
  const NodeId u1 = g.add_node("u1");
  const NodeId v1 = g.add_node("v1");
  const NodeId v2 = g.add_node("v2");
  const NodeId y = g.add_node("Y");
  g.add_edge(x, u1, 1);
  g.add_edge(u1, y, 1);
  g.add_edge(x, v1, 2);
  g.add_edge(v1, v2, 3);
  g.add_edge(v2, y, 2);
  g.add_edge(u1, v1, 4);
  g.add_edge(u1, v2, 5);
  const auto rec = recognize_whole(g);
  ASSERT_TRUE(rec.ladder.has_value()) << rec.reason;
  EXPECT_EQ(rec.ladder->rungs.size(), 2u);
  EXPECT_EQ(rec.ladder->rungs[0].left_pos, rec.ladder->rungs[1].left_pos);
}

TEST(Ladder, SegmentsTraceSides) {
  const auto rec = recognize_whole(workloads::fig4_left(2));
  ASSERT_TRUE(rec.ladder.has_value());
  const Ladder& l = *rec.ladder;
  EXPECT_EQ(l.left_seg.size(), l.left.size() - 1);
  EXPECT_EQ(l.right_seg.size(), l.right.size() - 1);
  EXPECT_EQ(l.left.front(), l.entry);
  EXPECT_EQ(l.left.back(), l.exit);
  EXPECT_EQ(l.right.front(), l.entry);
  EXPECT_EQ(l.right.back(), l.exit);
}

// The recognizer *constructs* the ladder's cycles from the rung layout
// instead of enumerating; on small skeletons the construction must agree
// exactly (as canonical edge sets) with generic enumeration over the
// skeleton block.
TEST(Ladder, ConstructedCyclesMatchEnumeration) {
  Prng rng(31337);
  for (int trial = 0; trial < 40; ++trial) {
    workloads::RandomLadderOptions opt;
    opt.rungs = 1 + static_cast<std::size_t>(trial % 4);
    opt.left_interior = 1 + static_cast<std::size_t>(trial % 3);
    opt.right_interior = 1 + static_cast<std::size_t>((trial / 2) % 3);
    opt.component_edges = 1 + static_cast<std::size_t>(trial % 2);
    const auto g = workloads::random_ladder(rng, opt);
    const auto rec = recognize_whole(g);
    ASSERT_TRUE(rec.ladder.has_value()) << rec.reason;

    const Skeleton skel =
        extract_skeleton(g, g.unique_source(), g.unique_sink());
    const auto enumerated = enumerate_undirected_cycles(skel.graph, 1u << 18);
    ASSERT_FALSE(enumerated.truncated);

    const auto canonical = [](const std::vector<UCycle>& cycles) {
      std::set<std::set<EdgeId>> out;
      for (const auto& c : cycles) {
        std::set<EdgeId> ids;
        for (const auto& s : c) ids.insert(s.edge);
        EXPECT_TRUE(out.insert(ids).second) << "duplicate cycle";
      }
      return out;
    };
    EXPECT_EQ(canonical(rec.ladder->cycles), canonical(enumerated.cycles))
        << "trial " << trial << " rungs=" << opt.rungs;
  }
}

class LadderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LadderProperty, RecognizesRandomLadders) {
  Prng rng(GetParam() * 31 + 7);
  for (const std::size_t rungs : {1u, 2u, 3u, 5u}) {
    workloads::RandomLadderOptions opt;
    opt.rungs = rungs;
    opt.left_interior = rungs + 1;
    opt.right_interior = rungs;
    opt.component_edges = 1 + (GetParam() % 3);
    const auto g = workloads::random_ladder(rng, opt);
    const auto rec = recognize_whole(g);
    ASSERT_TRUE(rec.ladder.has_value())
        << rec.reason << " rungs=" << rungs;
    EXPECT_GE(rec.ladder->rungs.size(), 1u);
    EXPECT_LE(rec.ladder->rungs.size(), rungs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LadderProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace sdaf
