// Deadlock-verdict property test: for randomized topologies with avoidance
// disabled (DummyMode::None), all three backends must agree on the
// deadlock-vs-complete verdict, the wedged state must be unique (traffic,
// fires and sink deliveries bit-identical -- bounded deterministic dataflow
// has a single terminal marking), and the state_dump must be emitted at
// exact quiescence iff the run deadlocked. This extends the Fig. 2 wedge
// check (tests/test_session.cpp) to random SP-DAGs and SP-ladders via the
// stress harness; any failure prints a one-line repro command.
#include <gtest/gtest.h>

#include "src/runtime/pool_executor.h"
#include "src/support/prng.h"
#include "tests/harness/stress_harness.h"

namespace sdaf::harness {
namespace {

TEST(DeadlockVerdicts, RandomizedUnprotectedRunsAgreeOnEveryBackend) {
  Prng rng(0xDEAD10C4);
  runtime::PoolExecutor pool(3);
  int deadlocks = 0;
  int completions = 0;
  for (int i = 0; i < 24; ++i) {
    CaseSpec spec;
    // Triangles are the known wedge; SP-DAGs and ladders with tight
    // buffers and heavy filtering wedge on their own merges.
    spec.topology = i % 4 == 0   ? Topology::Triangle
                    : i % 2 == 0 ? Topology::Sp
                                 : Topology::Ladder;
    spec.seed = rng.next_u64();
    spec.num_inputs = 30 + rng.next_below(50);
    // Alternate heavy and light filtering so the sweep sees both verdicts
    // (tight buffers wedge under almost any filtering).
    spec.pass_rate = i % 2 == 0 ? 0.15 + 0.4 * rng.next_double()
                                : 0.85 + 0.15 * rng.next_double();
    spec.mode = runtime::DummyMode::None;  // avoidance off
    spec.batch = 1;  // unprotected verdicts are only exact at paper pacing
    bool deadlocked = false;
    const auto failure = run_differential(spec, &pool, &deadlocked);
    ASSERT_FALSE(failure.has_value()) << *failure;
    if (deadlocked)
      ++deadlocks;
    else
      ++completions;
  }
  // The sweep must exercise both verdicts, or it proves nothing.
  EXPECT_GE(deadlocks, 3) << "sweep found too few deadlocks";
  EXPECT_GE(completions, 3) << "sweep found too few completions";
}

TEST(DeadlockVerdicts, ProtectedRunsNeverDeadlock) {
  // The same tight-buffer workloads with compiled intervals armed must
  // complete on every backend (the paper's guarantee), still bit-identical.
  Prng rng(0x5AFE);
  runtime::PoolExecutor pool(3);
  for (int i = 0; i < 8; ++i) {
    CaseSpec spec;
    spec.topology = i % 2 == 0 ? Topology::Sp : Topology::Ladder;
    spec.seed = rng.next_u64();
    spec.num_inputs = 30 + rng.next_below(50);
    spec.pass_rate = 0.15 + 0.5 * rng.next_double();
    spec.mode = i % 4 < 2 ? runtime::DummyMode::Propagation
                          : runtime::DummyMode::NonPropagation;
    spec.batch = 1;
    bool deadlocked = true;
    const auto failure = run_differential(spec, &pool, &deadlocked);
    ASSERT_FALSE(failure.has_value()) << *failure;
    EXPECT_FALSE(deadlocked) << to_string(spec);
  }
}

}  // namespace
}  // namespace sdaf::harness
