// Deadlock-verdict property test: for randomized topologies with avoidance
// disabled (DummyMode::None), all three backends must agree on the
// deadlock-vs-complete verdict, the wedged state must be unique (traffic,
// fires and sink deliveries bit-identical -- bounded deterministic dataflow
// has a single terminal marking), and the state_dump must be emitted at
// exact quiescence iff the run deadlocked. This extends the Fig. 2 wedge
// check (tests/test_session.cpp) to random SP-DAGs and SP-ladders via the
// stress harness; any failure prints a one-line repro command.
#include <gtest/gtest.h>

#include <regex>
#include <sstream>

#include "src/runtime/pool_executor.h"
#include "src/support/prng.h"
#include "tests/harness/stress_harness.h"

namespace sdaf::harness {
namespace {

TEST(DeadlockVerdicts, RandomizedUnprotectedRunsAgreeOnEveryBackend) {
  Prng rng(0xDEAD10C4);
  runtime::PoolExecutor pool(3);
  int deadlocks = 0;
  int completions = 0;
  for (int i = 0; i < 24; ++i) {
    CaseSpec spec;
    // Triangles are the known wedge; SP-DAGs and ladders with tight
    // buffers and heavy filtering wedge on their own merges.
    spec.topology = i % 4 == 0   ? Topology::Triangle
                    : i % 2 == 0 ? Topology::Sp
                                 : Topology::Ladder;
    spec.seed = rng.next_u64();
    spec.num_inputs = 30 + rng.next_below(50);
    // Alternate heavy and light filtering so the sweep sees both verdicts
    // (tight buffers wedge under almost any filtering).
    spec.pass_rate = i % 2 == 0 ? 0.15 + 0.4 * rng.next_double()
                                : 0.85 + 0.15 * rng.next_double();
    spec.mode = runtime::DummyMode::None;  // avoidance off
    spec.batch = 1;  // unprotected verdicts are only exact at paper pacing
    bool deadlocked = false;
    const auto failure = run_differential(spec, &pool, &deadlocked);
    ASSERT_FALSE(failure.has_value()) << *failure;
    if (deadlocked)
      ++deadlocks;
    else
      ++completions;
  }
  // The sweep must exercise both verdicts, or it proves nothing.
  EXPECT_GE(deadlocks, 3) << "sweep found too few deadlocks";
  EXPECT_GE(completions, 3) << "sweep found too few completions";
}

TEST(DeadlockVerdicts, ProtectedRunsNeverDeadlock) {
  // The same tight-buffer workloads with compiled intervals armed must
  // complete on every backend (the paper's guarantee), still bit-identical.
  Prng rng(0x5AFE);
  runtime::PoolExecutor pool(3);
  for (int i = 0; i < 8; ++i) {
    CaseSpec spec;
    spec.topology = i % 2 == 0 ? Topology::Sp : Topology::Ladder;
    spec.seed = rng.next_u64();
    spec.num_inputs = 30 + rng.next_below(50);
    spec.pass_rate = 0.15 + 0.5 * rng.next_double();
    spec.mode = i % 4 < 2 ? runtime::DummyMode::Propagation
                          : runtime::DummyMode::NonPropagation;
    spec.batch = 1;
    bool deadlocked = true;
    const auto failure = run_differential(spec, &pool, &deadlocked);
    ASSERT_FALSE(failure.has_value()) << *failure;
    EXPECT_FALSE(deadlocked) << to_string(spec);
  }
}

TEST(DeadlockVerdicts, StateDumpShapeIsUnifiedAcrossBackends) {
  // All three backends produce their wedge dumps through
  // exec::dump_wedged_state, so the shape must be identical: first one
  // `edge <id> <from>-><to> <occ>/<cap> pushed=<data>+<dummies>d ...` line
  // per edge in id order, then one `node <name> <state> park=<why>` line
  // per node in id order (each optionally followed by indented trace
  // lines). Find a wedging triangle case, then assert the shape per
  // backend.
  const std::regex edge_re(
      R"(^edge (\d+) \S+->\S+ \d+/\d+ pushed=\d+\+\d+d( head=.*)?( tail=.*)?$)");
  const std::regex node_re(R"(^node (\S+) .* park=.+$)");

  runtime::PoolExecutor pool(2);
  CaseSpec spec;
  spec.topology = Topology::Triangle;
  spec.num_inputs = 40;
  spec.pass_rate = 0.3;
  spec.mode = runtime::DummyMode::None;  // avoidance off: wedges
  spec.batch = 1;
  bool found_wedge = false;
  for (std::uint64_t seed = 1; seed <= 16 && !found_wedge; ++seed) {
    spec.seed = seed;
    const StreamGraph g = build_topology(spec);
    const auto reference = run_backend(g, spec, exec::Backend::Sim, &pool);
    if (!reference.deadlocked) continue;
    found_wedge = true;
    for (const exec::Backend backend :
         {exec::Backend::Sim, exec::Backend::Threaded, exec::Backend::Pooled}) {
      const auto report = run_backend(g, spec, backend, &pool);
      ASSERT_TRUE(report.deadlocked) << to_string(backend);
      ASSERT_FALSE(report.state_dump.empty()) << to_string(backend);
      std::istringstream lines(report.state_dump);
      std::string line;
      std::size_t edges_seen = 0;
      std::size_t nodes_seen = 0;
      while (std::getline(lines, line)) {
        if (line.rfind("  trace ", 0) == 0) {
          // Trace tails only follow node lines.
          EXPECT_GT(nodes_seen, 0u) << to_string(backend) << ": " << line;
          continue;
        }
        std::smatch m;
        if (line.rfind("edge ", 0) == 0) {
          EXPECT_EQ(nodes_seen, 0u)
              << to_string(backend) << ": edge line after node lines";
          ASSERT_TRUE(std::regex_match(line, m, edge_re))
              << to_string(backend) << ": " << line;
          EXPECT_EQ(m[1].str(), std::to_string(edges_seen))
              << to_string(backend) << ": edges out of order";
          ++edges_seen;
        } else {
          ASSERT_TRUE(std::regex_match(line, m, node_re))
              << to_string(backend) << ": " << line;
          EXPECT_EQ(m[1].str(), g.node_name(nodes_seen))
              << to_string(backend) << ": nodes out of order";
          ++nodes_seen;
        }
      }
      EXPECT_EQ(edges_seen, g.edge_count()) << to_string(backend);
      EXPECT_EQ(nodes_seen, g.node_count()) << to_string(backend);
    }
  }
  ASSERT_TRUE(found_wedge) << "no seed in [1,16] wedged the triangle";
}

}  // namespace
}  // namespace sdaf::harness
