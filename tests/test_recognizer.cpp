#include "src/spdag/recognizer.h"

#include <gtest/gtest.h>

#include "src/intervals/nonprop_sp.h"
#include "src/intervals/propagation_sp.h"
#include "src/support/prng.h"
#include "src/workloads/random_sp.h"
#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

TEST(Recognizer, AcceptsSingleEdge) {
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_edge(a, b, 3);
  const auto rec = recognize_sp(g);
  EXPECT_TRUE(rec.is_sp);
  EXPECT_EQ(rec.tree.node(rec.tree.root()).kind, SpKind::Leaf);
}

TEST(Recognizer, AcceptsMultiEdge) {
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_edge(a, b, 1);
  g.add_edge(a, b, 2);
  g.add_edge(a, b, 3);
  const auto rec = recognize_sp(g);
  ASSERT_TRUE(rec.is_sp);
  EXPECT_EQ(rec.tree.leaves_under(rec.tree.root()).size(), 3u);
}

TEST(Recognizer, AcceptsPipeline) {
  EXPECT_TRUE(recognize_sp(workloads::pipeline(8)).is_sp);
}

TEST(Recognizer, AcceptsSplitJoin) {
  EXPECT_TRUE(recognize_sp(workloads::fig1_splitjoin()).is_sp);
  EXPECT_TRUE(recognize_sp(workloads::splitjoin(4, 2)).is_sp);
}

TEST(Recognizer, AcceptsFig2AndFig3) {
  // The triangle is Pc(Sc(ab, bc), ac); Fig 3 is a 2-path parallel bundle.
  EXPECT_TRUE(recognize_sp(workloads::fig2_triangle()).is_sp);
  EXPECT_TRUE(recognize_sp(workloads::fig3_cycle()).is_sp);
}

TEST(Recognizer, RejectsFig4Left) {
  const auto rec = recognize_sp(workloads::fig4_left());
  EXPECT_FALSE(rec.is_sp);
  EXPECT_NE(rec.reason.find("irreducible"), std::string::npos);
}

TEST(Recognizer, RejectsButterfly) {
  EXPECT_FALSE(recognize_sp(workloads::fig4_butterfly()).is_sp);
}

TEST(Recognizer, RejectsNonTwoTerminal) {
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  g.add_edge(a, c, 1);
  g.add_edge(b, c, 1);
  const auto rec = recognize_sp(g);
  EXPECT_FALSE(rec.is_sp);
  EXPECT_NE(rec.reason.find("two-terminal"), std::string::npos);
}

TEST(Recognizer, ReductionExposesSkeletonOfFig4Left) {
  const StreamGraph g = workloads::fig4_left();
  const auto red = reduce_sp(g, g.unique_source(), g.unique_sink());
  // Fig 4 left is already irreducible: all 5 edges survive.
  EXPECT_EQ(red.remainder.size(), 5u);
}

class RecognizerProperty : public ::testing::TestWithParam<std::uint64_t> {};

// The recognizer must accept every generated SP-DAG, and the tree it builds
// -- though possibly shaped differently from the generator's -- must induce
// identical dummy intervals under both algorithms.
TEST_P(RecognizerProperty, RoundTripsRandomSpDags) {
  Prng rng(GetParam());
  for (std::size_t edges : {1u, 2u, 3u, 5u, 9u, 17u, 33u}) {
    workloads::RandomSpOptions opt;
    opt.target_edges = edges;
    const auto built = workloads::random_sp(rng, opt);
    const auto rec = recognize_sp(built.graph);
    ASSERT_TRUE(rec.is_sp) << "rejected SP-DAG with " << edges << " edges";

    const auto prop_trusted =
        propagation_intervals_sp(built.graph, built.tree);
    const auto prop_recognized =
        propagation_intervals_sp(built.graph, rec.tree);
    EXPECT_EQ(prop_trusted, prop_recognized);

    const auto np_trusted = nonprop_intervals_sp(built.graph, built.tree);
    const auto np_recognized = nonprop_intervals_sp(built.graph, rec.tree);
    EXPECT_EQ(np_trusted, np_recognized);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecognizerProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace sdaf
