#include "src/sim/simulation.h"

#include <gtest/gtest.h>

#include "src/core/compile.h"
#include "src/runtime/executor.h"
#include "src/workloads/filters.h"
#include "src/workloads/topologies.h"

namespace sdaf::sim {
namespace {

using runtime::DummyMode;
using runtime::Kernel;
using runtime::RelayKernel;

std::vector<std::shared_ptr<Kernel>> triangle_kernels(std::uint64_t prefix) {
  std::vector<std::shared_ptr<Kernel>> kernels;
  kernels.push_back(std::make_shared<RelayKernel>(
      workloads::adversarial_prefix_filter(1, prefix)));
  kernels.push_back(runtime::pass_through_kernel());
  kernels.push_back(runtime::pass_through_kernel());
  return kernels;
}

TEST(Sim, PipelineCompletes) {
  const StreamGraph g = workloads::pipeline(4, 2);
  Simulation sim(g, workloads::passthrough_kernels(g));
  SimOptions opt;
  opt.mode = DummyMode::None;
  opt.num_inputs = 100;
  const auto r = sim.run(opt);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.sink_data.back(), 100u);
}

TEST(Sim, Fig2DeadlocksWithoutDummies) {
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  Simulation sim(g, triangle_kernels(100));
  SimOptions opt;
  opt.mode = DummyMode::None;
  opt.num_inputs = 100;
  const auto r = sim.run(opt);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_FALSE(r.completed);
}

TEST(Sim, Fig2DeadlockThresholdTracksBufferSlack) {
  // Deadlock needs the A->B->C path full while A->C stays empty. The total
  // slack on the full side is b1 + b2 buffer slots plus scheduler-dependent
  // in-hand messages, so the minimal deadlocking adversarial prefix must be
  // finite, strictly beyond the buffer capacity, and deadlock must be
  // monotone in the prefix length.
  for (const std::int64_t b : {1, 2, 3}) {
    const StreamGraph g = workloads::fig2_triangle(b, b, 2);
    const auto deadlocks = [&](std::uint64_t prefix) {
      Simulation sim(g, triangle_kernels(prefix));
      SimOptions opt;
      opt.mode = DummyMode::None;
      opt.num_inputs = 1000;
      const auto r = sim.run(opt);
      EXPECT_NE(r.completed, r.deadlocked);
      return r.deadlocked;
    };
    std::uint64_t threshold = 0;
    for (std::uint64_t p = 1; p <= 3 * static_cast<std::uint64_t>(b) + 4;
         ++p) {
      if (deadlocks(p)) {
        threshold = p;
        break;
      }
    }
    ASSERT_GT(threshold, 0u) << "no finite prefix deadlocked, b=" << b;
    // The theory's lower bound: while fewer than b1+b2 items have entered
    // the full side, it cannot be full, so no deadlock.
    EXPECT_GT(threshold, static_cast<std::uint64_t>(2 * b)) << "b=" << b;
    // Monotone: anything at or past the threshold also deadlocks.
    EXPECT_TRUE(deadlocks(threshold + 1));
    EXPECT_TRUE(deadlocks(threshold + 7));
    EXPECT_FALSE(deadlocks(threshold - 1));
  }
}

TEST(Sim, Fig2SafeWithIntervals) {
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  const auto compiled = core::compile(g);
  Simulation sim(g, triangle_kernels(1000));
  SimOptions opt;
  opt.mode = DummyMode::Propagation;
  opt.intervals = compiled.integer_intervals(core::Rounding::Floor);
  opt.forward_on_filter = compiled.forward_on_filter();
  opt.num_inputs = 1000;
  const auto r = sim.run(opt);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.total_dummies(), 0u);
}

TEST(Sim, MatchesExecutorTrafficExactly) {
  // Identical kernels and seeds: the deterministic simulator and the
  // threaded executor must produce identical per-edge message counts.
  const StreamGraph g = workloads::fig1_splitjoin(3);
  const auto compiled = core::compile(g);
  const auto intervals = compiled.integer_intervals(core::Rounding::Floor);
  const auto forward = compiled.forward_on_filter();
  for (const double p : {0.3, 0.7, 1.0}) {
    SimOptions sopt;
    sopt.mode = DummyMode::Propagation;
    sopt.intervals = intervals;
    sopt.forward_on_filter = forward;
    sopt.num_inputs = 300;
    Simulation sim(g, workloads::relay_kernels(g, p, 42));
    const auto sr = sim.run(sopt);
    ASSERT_TRUE(sr.completed);

    runtime::ExecutorOptions xopt;
    xopt.mode = DummyMode::Propagation;
    xopt.intervals = intervals;
    xopt.forward_on_filter = forward;
    xopt.num_inputs = 300;
    runtime::Executor ex(g, workloads::relay_kernels(g, p, 42));
    const auto xr = ex.run(xopt);
    ASSERT_TRUE(xr.completed);

    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      EXPECT_EQ(sr.edges[e].data, xr.edges[e].data) << "edge " << e;
      EXPECT_EQ(sr.edges[e].dummies, xr.edges[e].dummies) << "edge " << e;
    }
    EXPECT_EQ(sr.fires, xr.fires);
    EXPECT_EQ(sr.sink_data, xr.sink_data);
  }
}

TEST(Sim, DeterministicAcrossRuns) {
  const StreamGraph g = workloads::fig1_splitjoin(2);
  SimOptions opt;
  opt.mode = DummyMode::NonPropagation;
  opt.intervals.assign(g.edge_count(), 2);
  opt.num_inputs = 500;
  Simulation a(g, workloads::relay_kernels(g, 0.5, 7));
  Simulation b(g, workloads::relay_kernels(g, 0.5, 7));
  const auto ra = a.run(opt);
  const auto rb = b.run(opt);
  EXPECT_EQ(ra.sweeps, rb.sweeps);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(ra.edges[e].data, rb.edges[e].data);
    EXPECT_EQ(ra.edges[e].dummies, rb.edges[e].dummies);
  }
}

TEST(Sim, MaxOccupancyBounded) {
  const StreamGraph g = workloads::fig1_splitjoin(3);
  Simulation sim(g, workloads::passthrough_kernels(g));
  SimOptions opt;
  opt.mode = DummyMode::None;
  opt.num_inputs = 100;
  const auto r = sim.run(opt);
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    EXPECT_LE(r.edges[e].max_occupancy, g.edge(e).buffer);
}

TEST(Sim, SweepGuardReportsNeither) {
  const StreamGraph g = workloads::pipeline(3, 1);
  Simulation sim(g, workloads::passthrough_kernels(g));
  SimOptions opt;
  opt.mode = DummyMode::None;
  opt.num_inputs = 1000;
  opt.max_sweeps = 3;  // far too few
  const auto r = sim.run(opt);
  EXPECT_FALSE(r.completed);
  EXPECT_FALSE(r.deadlocked);
}

}  // namespace
}  // namespace sdaf::sim
