// Checkpoint/restore for long-lived streams (src/ckpt, Stream::snapshot_*,
// Session::restore): asynchronous barrier snapshots complete without
// stopping the stream on every backend, the serialized format round-trips,
// a restored stream resumes bit-identically (outputs, counters, verdicts),
// and the marker/EOS interleavings -- snapshot after close, back-to-back
// barriers, a barrier racing a deadlock verdict, a wedged deadline-bounded
// snapshot -- all behave.
#include "src/ckpt/snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/core/compile.h"
#include "src/exec/session.h"
#include "src/exec/stream.h"
#include "src/runtime/pool_executor.h"
#include "src/workloads/filters.h"
#include "src/workloads/topologies.h"

namespace sdaf::exec {
namespace {

using runtime::DummyMode;
using runtime::Kernel;
using runtime::Value;

constexpr Backend kBackends[] = {Backend::Sim, Backend::Threaded,
                                 Backend::Pooled};

constexpr std::chrono::milliseconds kSnapTimeout{5000};

// A stateful kernel: emits the running sum of its inputs, so any restore
// that loses kernel state (or replays/skips an item) diverges loudly in
// every later output.
class CumSumKernel final : public Kernel {
 public:
  void fire(std::uint64_t seq, const std::vector<std::optional<Value>>& inputs,
            runtime::Emitter& out) override {
    std::int64_t v = static_cast<std::int64_t>(seq);
    for (const auto& in : inputs)
      if (in.has_value() && in->has_value()) v = in->as<std::int64_t>();
    total_ += v;
    for (std::size_t slot = 0; slot < out.slots(); ++slot)
      out.emit(slot, Value(total_));
  }
  void save_state(std::string& out) const override {
    out.assign(reinterpret_cast<const char*>(&total_), sizeof(total_));
  }
  void load_state(const std::string& in) override {
    ASSERT_EQ(in.size(), sizeof(total_));
    std::memcpy(&total_, in.data(), sizeof(total_));
  }

 private:
  std::int64_t total_ = 0;
};

// pipeline(3) with a stateful middle stage. Fresh instances per session --
// kernel state is per-run.
std::vector<std::shared_ptr<Kernel>> cumsum_kernels() {
  return {runtime::pass_through_kernel(), std::make_shared<CumSumKernel>(),
          runtime::pass_through_kernel()};
}

std::vector<std::shared_ptr<Kernel>> wedge_kernels() {
  return {std::make_shared<runtime::RelayKernel>(
              workloads::adversarial_prefix_filter(1, 100)),
          runtime::pass_through_kernel(), runtime::pass_through_kernel()};
}

// Two independent sources joining: the lagging-port arming path needs a
// port that is genuinely behind the barrier.
StreamGraph two_source_join() {
  StreamGraph g;
  const NodeId a = g.add_node("srcA");
  const NodeId b = g.add_node("srcB");
  const NodeId j = g.add_node("join");
  const NodeId y = g.add_node("sink");
  g.add_edge(a, j, 4);
  g.add_edge(b, j, 4);
  g.add_edge(j, y, 4);
  return g;
}

void expect_same_report(const RunReport& expected, const RunReport& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.deadlocked, actual.deadlocked) << label;
  ASSERT_EQ(expected.completed, actual.completed) << label;
  ASSERT_EQ(expected.sink_data, actual.sink_data) << label;
  ASSERT_EQ(expected.fires, actual.fires) << label;
  ASSERT_EQ(expected.edges.size(), actual.edges.size()) << label;
  for (std::size_t e = 0; e < expected.edges.size(); ++e) {
    EXPECT_EQ(expected.edges[e].data, actual.edges[e].data)
        << label << " edge " << e;
    EXPECT_EQ(expected.edges[e].dummies, actual.edges[e].dummies)
        << label << " edge " << e;
  }
}

// An in-flight snapshot must not disturb the stream: all items flow, the
// marker never surfaces at the ports, and the snapshot describes the graph
// at the barrier.
TEST(Ckpt, SnapshotMidStreamCompletesOnEveryBackend) {
  const StreamGraph g = workloads::pipeline(3, 4);
  for (const Backend backend : kBackends) {
    const std::string label = to_string(backend);
    Session session(g, workloads::passthrough_kernels(g));
    StreamSpec ss;
    ss.run.backend = backend;
    ss.run.mode = DummyMode::None;
    ss.run.pool_workers = 2;
    Stream stream = session.open(ss);
    EXPECT_EQ(stream.epoch(), 0u) << label;
    for (std::int64_t i = 0; i < 50; ++i)
      ASSERT_TRUE(stream.input(0).push(Value(i * 10)));
    ASSERT_TRUE(stream.snapshot_begin()) << label;
    // Keep the stream busy while the barrier drains; the caller's own polls
    // consume (and acknowledge) the tap marker on the way.
    std::vector<OutputPort::Item> got;
    std::optional<ckpt::StreamSnapshot> snap;
    const auto deadline = std::chrono::steady_clock::now() + kSnapTimeout;
    while (!snap.has_value()) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline) << label;
      while (auto item = stream.output(0).poll()) got.push_back(*item);
      snap = stream.snapshot_poll();
    }
    EXPECT_EQ(snap->barrier_seq, 50u) << label;
    EXPECT_EQ(snap->epoch, 0u) << label;
    EXPECT_EQ(snap->nodes.size(), g.node_count()) << label;
    EXPECT_EQ(snap->edges.size(), g.edge_count()) << label;
    ASSERT_EQ(snap->ports.size(), 1u) << label;
    EXPECT_EQ(snap->ports[0].closed, 0) << label;
    EXPECT_EQ(snap->ports[0].next_seq, 50u) << label;
    ASSERT_EQ(snap->taps.size(), 1u) << label;
    EXPECT_FALSE(snap->signature.empty()) << label;
    // The stream runs on, unaffected.
    for (std::int64_t i = 50; i < 100; ++i)
      ASSERT_TRUE(stream.input(0).push(Value(i * 10)));
    stream.input(0).close();
    while (auto item = stream.output(0).next()) got.push_back(*item);
    ASSERT_EQ(got.size(), 100u) << label;
    for (std::size_t k = 0; k < got.size(); ++k) {
      EXPECT_EQ(got[k].seq, k) << label;
      EXPECT_EQ(got[k].value.as<std::int64_t>(),
                static_cast<std::int64_t>(k) * 10)
          << label;
    }
    const RunReport report = stream.finish();
    EXPECT_TRUE(report.completed) << label;
  }
}

// The same mid-stream barrier on a scheduler-adversarial pool: more workers
// than nodes, 2-slot deques, 1-step quanta and injected yields, so every
// marker hop crosses a steal and the instance futex-parks between pushes.
// Barrier markers are occupancy-neutral pending work -- the snapshot must
// complete (not hang a quiescence verdict) and describe the same cut.
TEST(Ckpt, SnapshotCompletesOnPerturbedPool) {
  const StreamGraph g = workloads::pipeline(3, 4);
  runtime::PoolExecutor::Options popt;
  popt.workers = 6;
  popt.deque_capacity = 2;
  popt.max_steps_per_quantum = 1;
  popt.perturb_yield_in_256 = 96;
  popt.seed = 0xC4A51;
  runtime::PoolExecutor pool(popt);
  Session session(g, workloads::passthrough_kernels(g));
  StreamSpec ss;
  ss.run.backend = Backend::Pooled;
  ss.run.pool = &pool;
  ss.run.mode = DummyMode::None;
  Stream stream = session.open(ss);
  for (std::int64_t i = 0; i < 50; ++i)
    ASSERT_TRUE(stream.input(0).push(Value(i * 10)));
  ASSERT_TRUE(stream.snapshot_begin());
  std::vector<OutputPort::Item> got;
  std::optional<ckpt::StreamSnapshot> snap;
  const auto deadline = std::chrono::steady_clock::now() + kSnapTimeout;
  while (!snap.has_value()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    while (auto item = stream.output(0).poll()) got.push_back(*item);
    snap = stream.snapshot_poll();
  }
  EXPECT_EQ(snap->barrier_seq, 50u);
  EXPECT_EQ(snap->nodes.size(), g.node_count());
  for (std::int64_t i = 50; i < 100; ++i)
    ASSERT_TRUE(stream.input(0).push(Value(i * 10)));
  stream.input(0).close();
  while (auto item = stream.output(0).next()) got.push_back(*item);
  ASSERT_EQ(got.size(), 100u);
  for (std::size_t k = 0; k < got.size(); ++k)
    EXPECT_EQ(got[k].value.as<std::int64_t>(),
              static_cast<std::int64_t>(k) * 10);
  EXPECT_TRUE(stream.finish().completed);
}

// The versioned blob round-trips exactly and rejects corruption.
TEST(Ckpt, SerializedSnapshotRoundTrips) {
  const StreamGraph g = workloads::pipeline(3, 4);
  Session session(g, workloads::passthrough_kernels(g));
  StreamSpec ss;
  ss.run.backend = Backend::Sim;
  ss.run.mode = DummyMode::None;
  Stream stream = session.open(ss);
  for (std::int64_t i = 0; i < 20; ++i)
    ASSERT_TRUE(stream.input(0).push(Value(i)));
  const auto snap = stream.snapshot(kSnapTimeout);
  ASSERT_TRUE(snap.has_value());
  // Nothing polled: everything the sink emitted by the cut is residue.
  EXPECT_FALSE(snap->taps[0].residue.empty());

  const std::vector<std::uint8_t> bytes = ckpt::serialize(*snap);
  const auto back = ckpt::deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version, snap->version);
  EXPECT_EQ(back->signature, snap->signature);
  EXPECT_EQ(back->epoch, snap->epoch);
  EXPECT_EQ(back->barrier_seq, snap->barrier_seq);
  EXPECT_EQ(back->sweeps, snap->sweeps);
  ASSERT_EQ(back->nodes.size(), snap->nodes.size());
  for (std::size_t n = 0; n < snap->nodes.size(); ++n) {
    EXPECT_EQ(back->nodes[n].done, snap->nodes[n].done);
    EXPECT_EQ(back->nodes[n].fires, snap->nodes[n].fires);
    EXPECT_EQ(back->nodes[n].sink_data, snap->nodes[n].sink_data);
    EXPECT_EQ(back->nodes[n].source_seq, snap->nodes[n].source_seq);
    EXPECT_EQ(back->nodes[n].last_sent, snap->nodes[n].last_sent);
    EXPECT_EQ(back->nodes[n].kernel_state, snap->nodes[n].kernel_state);
  }
  ASSERT_EQ(back->edges.size(), snap->edges.size());
  for (std::size_t e = 0; e < snap->edges.size(); ++e) {
    EXPECT_EQ(back->edges[e].data_pushed, snap->edges[e].data_pushed);
    EXPECT_EQ(back->edges[e].dummies_pushed, snap->edges[e].dummies_pushed);
  }
  ASSERT_EQ(back->taps.size(), snap->taps.size());
  ASSERT_EQ(back->taps[0].residue.size(), snap->taps[0].residue.size());
  for (std::size_t k = 0; k < snap->taps[0].residue.size(); ++k)
    EXPECT_EQ(back->taps[0].residue[k].seq, snap->taps[0].residue[k].seq);

  // Corruption and truncation are detected, not crashed on.
  EXPECT_FALSE(ckpt::deserialize(bytes.data(), bytes.size() - 1).has_value());
  std::vector<std::uint8_t> bad = bytes;
  bad[0] ^= 0xFF;  // version
  EXPECT_FALSE(ckpt::deserialize(bad).has_value());
  (void)stream.finish();
}

// The crash-recovery differential, in-process: snapshot mid-stream, discard
// the original, restore into a fresh session, replay the cut's tail -- the
// delivered outputs and the final report must be bit-identical to an
// uninterrupted run. Stateful kernel included, so lost kernel state or a
// skipped/replayed item shows up in every subsequent sum.
TEST(Ckpt, RestoreResumesBitIdenticallyOnEveryBackend) {
  const StreamGraph g = workloads::pipeline(3, 4);
  constexpr std::int64_t kItems = 120;
  constexpr std::int64_t kCut = 47;
  // Reference: uninterrupted Sim run.
  std::vector<OutputPort::Item> want;
  RunReport want_report;
  {
    Session session(g, cumsum_kernels());
    StreamSpec ss;
    ss.run.backend = Backend::Sim;
    ss.run.mode = DummyMode::None;
    Stream stream = session.open(ss);
    for (std::int64_t i = 0; i < kItems; ++i)
      ASSERT_TRUE(stream.input(0).push(Value(i * 3)));
    stream.input(0).close();
    while (auto item = stream.output(0).next()) want.push_back(*item);
    want_report = stream.finish();
    ASSERT_TRUE(want_report.completed);
    ASSERT_EQ(want.size(), static_cast<std::size_t>(kItems));
  }
  for (const Backend backend : kBackends) {
    const std::string label = to_string(backend);
    StreamSpec ss;
    ss.run.backend = backend;
    ss.run.mode = DummyMode::None;
    ss.run.pool_workers = 2;
    // Phase 1: run to the cut, snapshot, then "crash" (discard the stream
    // and the session -- nothing delivered from it is kept).
    ckpt::StreamSnapshot snap;
    {
      Session session(g, cumsum_kernels());
      Stream stream = session.open(ss);
      for (std::int64_t i = 0; i < kCut; ++i)
        ASSERT_TRUE(stream.input(0).push(Value(i * 3)));
      auto taken = stream.snapshot(kSnapTimeout);
      ASSERT_TRUE(taken.has_value()) << label;
      snap = std::move(*taken);
      (void)stream.finish();
    }
    EXPECT_EQ(snap.ports[0].next_seq, static_cast<std::uint64_t>(kCut))
        << label;
    // Phase 2: restore into a fresh session (fresh kernel instances) and
    // replay the tail.
    Session session(g, cumsum_kernels());
    auto restored = session.restore(ss, snap);
    ASSERT_TRUE(restored.has_value()) << label;
    EXPECT_EQ(restored->epoch(), 1u) << label;
    ASSERT_EQ(restored->input(0).pushed(), static_cast<std::uint64_t>(kCut))
        << label;
    for (std::int64_t i = kCut; i < kItems; ++i)
      ASSERT_TRUE(restored->input(0).push(Value(i * 3))) << label;
    restored->input(0).close();
    std::vector<OutputPort::Item> got;
    while (auto item = restored->output(0).next()) got.push_back(*item);
    const RunReport report = restored->finish();
    // Outputs: residue + post-restore emissions = the full uninterrupted
    // sequence (nothing was delivered before the crash).
    ASSERT_EQ(got.size(), want.size()) << label;
    for (std::size_t k = 0; k < want.size(); ++k) {
      EXPECT_EQ(got[k].seq, want[k].seq) << label << " item " << k;
      EXPECT_EQ(got[k].value.as<std::int64_t>(),
                want[k].value.as<std::int64_t>())
          << label << " item " << k;
    }
    expect_same_report(want_report, report, label);
  }
}

// Snapshots are backend-portable: cut on Threaded, resume on Sim.
TEST(Ckpt, RestoreCrossesBackends) {
  const StreamGraph g = workloads::pipeline(3, 4);
  StreamSpec ss;
  ss.run.mode = DummyMode::None;
  ckpt::StreamSnapshot snap;
  {
    Session session(g, cumsum_kernels());
    ss.run.backend = Backend::Threaded;
    Stream stream = session.open(ss);
    for (std::int64_t i = 0; i < 30; ++i)
      ASSERT_TRUE(stream.input(0).push(Value(i)));
    auto taken = stream.snapshot(kSnapTimeout);
    ASSERT_TRUE(taken.has_value());
    snap = std::move(*taken);
    (void)stream.finish();
  }
  Session session(g, cumsum_kernels());
  ss.run.backend = Backend::Sim;
  auto restored = session.restore(ss, snap);
  ASSERT_TRUE(restored.has_value());
  for (std::int64_t i = 30; i < 60; ++i)
    ASSERT_TRUE(restored->input(0).push(Value(i)));
  restored->input(0).close();
  std::size_t got = 0;
  std::int64_t expected_sum = 0;
  while (auto item = restored->output(0).next()) {
    expected_sum += static_cast<std::int64_t>(got);
    EXPECT_EQ(item->seq, got);
    EXPECT_EQ(item->value.as<std::int64_t>(), expected_sum);
    ++got;
  }
  EXPECT_EQ(got, 60u);
  EXPECT_TRUE(restored->finish().completed);
}

// Restore validates: wrong avoidance configuration (signature), wrong
// version, and internally inconsistent blobs are refused, not half-applied.
TEST(Ckpt, RestoreRejectsMismatchedSnapshots) {
  const StreamGraph g = workloads::pipeline(3, 4);
  StreamSpec ss;
  ss.run.backend = Backend::Sim;
  ss.run.mode = DummyMode::None;
  Session session(g, workloads::passthrough_kernels(g));
  Stream stream = session.open(ss);
  ASSERT_TRUE(stream.input(0).push(Value(std::int64_t{1})));
  auto snap = stream.snapshot(kSnapTimeout);
  ASSERT_TRUE(snap.has_value());
  (void)stream.finish();

  ckpt::StreamSnapshot bad = *snap;
  bad.version = ckpt::kSnapshotVersion + 1;
  EXPECT_FALSE(session.restore(ss, bad).has_value());

  StreamSpec other = ss;
  other.run.mode = DummyMode::Propagation;  // different traffic config
  EXPECT_FALSE(session.restore(other, *snap).has_value());

  bad = *snap;
  bad.nodes.pop_back();
  EXPECT_FALSE(session.restore(ss, bad).has_value());

  bad = *snap;
  bad.ports[0].closed = 1;  // closed port whose source is not cut done
  bad.nodes[g.sources()[0]].done = 0;
  EXPECT_FALSE(session.restore(ss, bad).has_value());

  // The pristine snapshot restores fine (the rejects above were about the
  // blobs, not the stream).
  auto ok = session.restore(ss, *snap);
  ASSERT_TRUE(ok.has_value());
  ok->input(0).close();
  EXPECT_TRUE(ok->finish().completed);
}

// A port lagging behind the barrier stalls the cut only until it reaches
// S: the marker is injected exactly between S-1 and S.
TEST(Ckpt, LaggingPortArmsAndInjectsAtBarrier) {
  const StreamGraph g = two_source_join();
  for (const Backend backend : kBackends) {
    const std::string label = to_string(backend);
    Session session(g, workloads::passthrough_kernels(g));
    StreamSpec ss;
    ss.run.backend = backend;
    ss.run.mode = DummyMode::None;
    ss.run.pool_workers = 2;
    Stream stream = session.open(ss);
    for (std::int64_t i = 0; i < 10; ++i)
      ASSERT_TRUE(stream.input(0).push(Value(i)));
    for (std::int64_t i = 0; i < 3; ++i)
      ASSERT_TRUE(stream.input(1).push(Value(i)));
    ASSERT_TRUE(stream.snapshot_begin()) << label;
    // Port 1 is 7 short of S = 10: the barrier cannot complete yet (its
    // source has no marker to checkpoint on).
    for (int spin = 0; spin < 10; ++spin) {
      stream.pump();
      EXPECT_FALSE(stream.snapshot_poll().has_value()) << label;
    }
    for (std::int64_t i = 3; i < 10; ++i)
      ASSERT_TRUE(stream.input(1).push(Value(i)));
    std::optional<ckpt::StreamSnapshot> snap;
    const auto deadline = std::chrono::steady_clock::now() + kSnapTimeout;
    while (!snap.has_value()) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline) << label;
      while (stream.output(0).poll().has_value()) {
      }
      snap = stream.snapshot_poll();
    }
    EXPECT_EQ(snap->barrier_seq, 10u) << label;
    EXPECT_EQ(snap->ports[0].next_seq, 10u) << label;
    EXPECT_EQ(snap->ports[1].next_seq, 10u) << label;
    for (auto& port : {0, 1}) stream.input(port).close();
    EXPECT_TRUE(stream.finish().completed) << label;
  }
}

// Marker/EOS interleaving: a snapshot begun after every port closed is the
// terminal cut -- no markers, completion through the finished set alone --
// and restoring it yields an already-ended stream that re-delivers only
// the residue.
TEST(Ckpt, SnapshotAfterCloseIsTerminalCut) {
  const StreamGraph g = workloads::pipeline(3, 4);
  for (const Backend backend : kBackends) {
    const std::string label = to_string(backend);
    StreamSpec ss;
    ss.run.backend = backend;
    ss.run.mode = DummyMode::None;
    ss.run.pool_workers = 2;
    ckpt::StreamSnapshot snap;
    {
      Session session(g, workloads::passthrough_kernels(g));
      Stream stream = session.open(ss);
      for (std::int64_t i = 0; i < 25; ++i)
        ASSERT_TRUE(stream.input(0).push(Value(i * 2)));
      stream.input(0).close();
      auto taken = stream.snapshot(kSnapTimeout);
      ASSERT_TRUE(taken.has_value()) << label;
      snap = std::move(*taken);
      EXPECT_EQ(snap.ports[0].closed, 1) << label;
      EXPECT_EQ(snap.ports[0].next_seq, 25u) << label;
      // Terminal cut: every node drained to EOS, so every cut is final.
      for (const auto& n : snap.nodes) EXPECT_EQ(n.done, 1) << label;
      EXPECT_EQ(snap.taps[0].ended, 1) << label;
      EXPECT_EQ(snap.taps[0].residue.size(), 25u) << label;
      (void)stream.finish();
    }
    Session session(g, workloads::passthrough_kernels(g));
    auto restored = session.restore(ss, snap);
    ASSERT_TRUE(restored.has_value()) << label;
    EXPECT_TRUE(restored->input(0).closed()) << label;
    std::size_t got = 0;
    while (auto item = restored->output(0).poll()) {
      EXPECT_EQ(item->seq, got) << label;
      ++got;
    }
    EXPECT_EQ(got, 25u) << label;
    EXPECT_TRUE(restored->output(0).ended()) << label;
    EXPECT_TRUE(restored->finish().completed) << label;
  }
}

// Back-to-back snapshots serialize: a second begin while one barrier is
// pending is refused; after collection the next barrier runs at the newer
// cut, and each successive snapshot stands alone.
TEST(Ckpt, BackToBackSnapshotsSerialize) {
  const StreamGraph g = workloads::pipeline(3, 4);
  for (const Backend backend : kBackends) {
    const std::string label = to_string(backend);
    Session session(g, workloads::passthrough_kernels(g));
    StreamSpec ss;
    ss.run.backend = backend;
    ss.run.mode = DummyMode::None;
    ss.run.pool_workers = 2;
    Stream stream = session.open(ss);
    for (std::int64_t i = 0; i < 10; ++i)
      ASSERT_TRUE(stream.input(0).push(Value(i)));
    ASSERT_TRUE(stream.snapshot_begin()) << label;
    EXPECT_FALSE(stream.snapshot_begin()) << label;  // one at a time
    auto first = stream.snapshot(kSnapTimeout);  // polls the pending barrier
    ASSERT_TRUE(first.has_value()) << label;
    EXPECT_EQ(first->barrier_seq, 10u) << label;
    for (std::int64_t i = 10; i < 20; ++i)
      ASSERT_TRUE(stream.input(0).push(Value(i)));
    auto second = stream.snapshot(kSnapTimeout);
    ASSERT_TRUE(second.has_value()) << label;
    EXPECT_EQ(second->barrier_seq, 20u) << label;
    stream.input(0).close();
    while (stream.output(0).next().has_value()) {
    }
    EXPECT_TRUE(stream.finish().completed) << label;
  }
}

// A barrier racing a deadlock verdict: on a wedged stream the snapshot can
// never complete (a wedged node consumes no marker), and certification is
// byte-for-byte unaffected by the pending barrier.
TEST(Ckpt, SnapshotRacingDeadlockVerdictStaysPendingAndCertifies) {
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  RunSpec batch_rs;
  batch_rs.mode = DummyMode::None;
  batch_rs.num_inputs = 100;
  batch_rs.backend = Backend::Sim;
  Session batch_session(g, wedge_kernels());
  const RunReport reference = batch_session.run(batch_rs);
  ASSERT_TRUE(reference.deadlocked);
  for (const Backend backend : kBackends) {
    const std::string label = to_string(backend);
    Session session(g, wedge_kernels());
    StreamSpec ss;
    ss.run = batch_rs;
    ss.run.backend = backend;
    ss.run.pool_workers = 2;
    ss.feed_capacity = 128;
    Stream stream = session.open(ss);
    for (int i = 0; i < 100; ++i) ASSERT_TRUE(stream.input(0).push());
    ASSERT_TRUE(stream.snapshot_begin()) << label;
    stream.input(0).close();  // the wedge becomes certifiable
    EXPECT_FALSE(stream.snapshot_poll().has_value()) << label;
    const RunReport report = stream.finish();
    EXPECT_TRUE(report.deadlocked) << label;
    expect_same_report(reference, report, label);
  }
}

// A deadline-bounded snapshot on a wedged stream times out cleanly; the
// barrier stays pending (never falsely completes) and the stream remains
// fully usable afterwards.
TEST(Ckpt, WedgedStreamSnapshotTimesOut) {
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  for (const Backend backend : kBackends) {
    const std::string label = to_string(backend);
    Session session(g, wedge_kernels());
    StreamSpec ss;
    ss.run.backend = backend;
    ss.run.mode = DummyMode::None;
    ss.run.pool_workers = 2;
    ss.feed_capacity = 128;
    Stream stream = session.open(ss);
    for (int i = 0; i < 100; ++i) ASSERT_TRUE(stream.input(0).push());
    EXPECT_FALSE(
        stream.snapshot(std::chrono::milliseconds(100)).has_value())
        << label;
    EXPECT_FALSE(stream.snapshot_begin()) << label;  // still pending
    EXPECT_FALSE(stream.snapshot_poll().has_value()) << label;
    stream.input(0).close();
    EXPECT_TRUE(stream.finish().deadlocked) << label;
  }
}

// A port closed mid-barrier (before reaching S) cuts short: its marker
// precedes its EOS, the cut records its final count, and the barrier still
// completes.
TEST(Ckpt, PortClosedShortOfBarrierCutsAtFinalCount) {
  const StreamGraph g = two_source_join();
  for (const Backend backend : kBackends) {
    const std::string label = to_string(backend);
    Session session(g, workloads::passthrough_kernels(g));
    StreamSpec ss;
    ss.run.backend = backend;
    ss.run.mode = DummyMode::None;
    ss.run.pool_workers = 2;
    Stream stream = session.open(ss);
    for (std::int64_t i = 0; i < 8; ++i)
      ASSERT_TRUE(stream.input(0).push(Value(i)));
    for (std::int64_t i = 0; i < 5; ++i)
      ASSERT_TRUE(stream.input(1).push(Value(i)));
    ASSERT_TRUE(stream.snapshot_begin()) << label;
    stream.input(1).close();  // 3 short of S = 8: marker, then EOS
    std::optional<ckpt::StreamSnapshot> snap;
    const auto deadline = std::chrono::steady_clock::now() + kSnapTimeout;
    while (!snap.has_value()) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline) << label;
      stream.pump();
      while (stream.output(0).poll().has_value()) {
      }
      snap = stream.snapshot_poll();
    }
    EXPECT_EQ(snap->barrier_seq, 8u) << label;
    EXPECT_EQ(snap->ports[0].next_seq, 8u) << label;
    // Closed mid-barrier: cut open (the caller replays the close), at its
    // final accepted count.
    EXPECT_EQ(snap->ports[1].closed, 0) << label;
    EXPECT_EQ(snap->ports[1].next_seq, 5u) << label;
    stream.input(0).close();
    EXPECT_TRUE(stream.finish().completed) << label;
  }
}

// Destroying (finishing) a stream with a barrier pending abandons it
// cleanly -- stale markers drain with the teardown, no assert, exact
// verdict intact.
TEST(Ckpt, FinishWithPendingBarrierAbandonsIt) {
  const StreamGraph g = workloads::pipeline(3, 4);
  for (const Backend backend : kBackends) {
    Session session(g, workloads::passthrough_kernels(g));
    StreamSpec ss;
    ss.run.backend = backend;
    ss.run.mode = DummyMode::None;
    ss.run.pool_workers = 2;
    Stream stream = session.open(ss);
    for (std::int64_t i = 0; i < 30; ++i)
      ASSERT_TRUE(stream.input(0).push(Value(i)));
    ASSERT_TRUE(stream.snapshot_begin()) << to_string(backend);
    const RunReport report = stream.finish();
    EXPECT_TRUE(report.completed) << to_string(backend);
  }
}

}  // namespace
}  // namespace sdaf::exec
