// The streaming port API (src/exec/stream.h): port-fed runs bit-identical
// to their batch equivalents, live payloads flowing push -> poll, Sim
// backpressure without blocking, the extended quiescence rule (no verdict
// while ports are open; exact deadlock verdict at dynamic close), and the
// thread-offloaded Session::submit.
#include "src/exec/stream.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "src/core/compile.h"
#include "src/exec/session.h"
#include "src/runtime/pool_executor.h"
#include "src/workloads/filters.h"
#include "src/workloads/topologies.h"
#include "tests/harness/stress_harness.h"

namespace sdaf::exec {
namespace {

using runtime::DummyMode;
using runtime::Kernel;
using runtime::Value;

constexpr Backend kBackends[] = {Backend::Sim, Backend::Threaded,
                                 Backend::Pooled};

void expect_same_report(const RunReport& expected, const RunReport& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.deadlocked, actual.deadlocked) << label;
  ASSERT_EQ(expected.completed, actual.completed) << label;
  ASSERT_EQ(expected.sink_data, actual.sink_data) << label;
  ASSERT_EQ(expected.fires, actual.fires) << label;
  ASSERT_EQ(expected.edges.size(), actual.edges.size()) << label;
  for (std::size_t e = 0; e < expected.edges.size(); ++e) {
    EXPECT_EQ(expected.edges[e].data, actual.edges[e].data)
        << label << " edge " << e;
    EXPECT_EQ(expected.edges[e].dummies, actual.edges[e].dummies)
        << label << " edge " << e;
  }
}

std::vector<std::shared_ptr<Kernel>> wedge_kernels() {
  std::vector<std::shared_ptr<Kernel>> kernels;
  kernels.push_back(std::make_shared<runtime::RelayKernel>(
      workloads::adversarial_prefix_filter(1, 100)));
  kernels.push_back(runtime::pass_through_kernel());
  kernels.push_back(runtime::pass_through_kernel());
  return kernels;
}

// Pushing N firing tokens through an InputPort and closing must reproduce
// the num_inputs = N batch run bit for bit, on every backend and in both
// dummy modes (the randomized port-mode differential sweep widens this;
// here the canonical split-join gets it deterministically).
TEST(Stream, PortFedTokensBitIdenticalToBatchRun) {
  const StreamGraph g = workloads::splitjoin(3, 2, 3);
  const auto compiled = core::compile(g);
  ASSERT_TRUE(compiled.ok);
  for (const auto mode :
       {DummyMode::Propagation, DummyMode::NonPropagation}) {
    Session session(g, workloads::relay_kernels(g, 0.55, 0xAB));
    RunSpec rs;
    rs.mode = mode;
    rs.apply(compiled);
    rs.num_inputs = 150;
    rs.pool_workers = 2;
    rs.backend = Backend::Sim;
    const RunReport reference = session.run(rs);
    ASSERT_TRUE(reference.completed);
    for (const Backend backend : kBackends) {
      StreamSpec ss;
      ss.run = rs;
      ss.run.backend = backend;
      Stream stream = session.open(ss);
      ASSERT_EQ(stream.input_count(), 1u);
      ASSERT_EQ(stream.output_count(), 1u);
      for (int i = 0; i < 150; ++i) ASSERT_TRUE(stream.input(0).push());
      stream.input(0).close();
      EXPECT_TRUE(stream.input(0).closed());
      const RunReport report = stream.finish();
      expect_same_report(reference, report,
                         std::string("port+") + to_string(backend));
    }
  }
}

// Live payloads ride the ports end to end: what goes in at the InputPort
// comes out of the OutputPort, in order, with matching sequence numbers.
TEST(Stream, PayloadsFlowInOrderThroughEveryBackend) {
  const StreamGraph g = workloads::pipeline(3, 4);
  for (const Backend backend : kBackends) {
    Session session(g, workloads::passthrough_kernels(g));
    StreamSpec ss;
    ss.run.backend = backend;
    ss.run.mode = DummyMode::None;
    ss.run.pool_workers = 2;
    Stream stream = session.open(ss);
    InputPort& in = stream.input(0);
    OutputPort& out = stream.output(0);
    std::uint64_t received = 0;
    for (std::int64_t i = 0; i < 64; ++i) {
      ASSERT_TRUE(in.push(Value(i * 10)));
      // Drain opportunistically so the test also interleaves poll.
      while (auto item = out.poll()) {
        EXPECT_EQ(item->seq, received);
        EXPECT_EQ(item->value.as<std::int64_t>(),
                  static_cast<std::int64_t>(received) * 10);
        ++received;
      }
    }
    in.close();
    // Blocking next() finishes the tail and then reports end-of-stream.
    while (auto item = out.next()) {
      EXPECT_EQ(item->seq, received);
      EXPECT_EQ(item->value.as<std::int64_t>(),
                static_cast<std::int64_t>(received) * 10);
      ++received;
    }
    EXPECT_EQ(received, 64u) << to_string(backend);
    EXPECT_TRUE(out.ended()) << to_string(backend);
    const RunReport report = stream.finish();
    EXPECT_TRUE(report.completed) << to_string(backend);
    EXPECT_EQ(in.pushed(), 64u);
  }
}

// Sim backpressure is pump-based, not blocking: try_push refuses once the
// feed fills, a pump drains it into the graph, and push() self-pumps.
TEST(Stream, SimBackpressurePumpsInsteadOfBlocking) {
  const StreamGraph g = workloads::pipeline(2, 8);
  Session session(g, workloads::passthrough_kernels(g));
  StreamSpec ss;
  ss.run.backend = Backend::Sim;
  ss.run.mode = DummyMode::None;
  ss.feed_capacity = 2;
  Stream stream = session.open(ss);
  InputPort& in = stream.input(0);
  ASSERT_TRUE(in.try_push());
  ASSERT_TRUE(in.try_push());
  EXPECT_FALSE(in.try_push());  // feed full, nothing pumped yet
  stream.pump();
  EXPECT_TRUE(in.try_push());  // the sweep drained the feed
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(in.push());  // push() self-pumps
  in.close();
  const RunReport report = stream.finish();
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.fires.front(), 43u);
}

// The extended quiescence rule: a wedged unprotected workload reaches no
// verdict while its port is open (quiescence means "awaiting input", and
// items keep flowing out of the tap), and the dynamic close() then yields
// exactly the certified deadlock of the batch run, state dump included.
TEST(Stream, DeadlockVerdictWaitsForPortCloseOnEveryBackend) {
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  RunSpec batch_rs;
  batch_rs.mode = DummyMode::None;
  batch_rs.num_inputs = 100;
  batch_rs.pool_workers = 2;
  batch_rs.backend = Backend::Sim;
  Session batch_session(g, wedge_kernels());
  const RunReport reference = batch_session.run(batch_rs);
  ASSERT_TRUE(reference.deadlocked);
  for (const Backend backend : kBackends) {
    Session session(g, wedge_kernels());
    StreamSpec ss;
    ss.run = batch_rs;
    ss.run.backend = backend;
    ss.feed_capacity = 128;  // whole run fits: pushes never block on a wedge
    Stream stream = session.open(ss);
    for (int i = 0; i < 100; ++i) ASSERT_TRUE(stream.input(0).push());
    // Ports still open: no verdict exists yet, so the tap must not report
    // end-of-stream (the wedged sink never fires -- alignment starves on
    // the filtered long path -- so no items arrive either).
    OutputPort& out = stream.output(0);
    if (backend == Backend::Sim) stream.pump();
    while (out.poll().has_value()) {
    }
    EXPECT_FALSE(out.ended()) << to_string(backend);
    // Dynamic EOS: now the wedge is certifiable, bit-identical to batch.
    stream.input(0).close();
    const RunReport report = stream.finish();
    const std::string label = std::string("port+") + to_string(backend);
    EXPECT_TRUE(report.deadlocked) << label;
    EXPECT_FALSE(report.completed) << label;
    ASSERT_FALSE(report.state_dump.empty()) << label;
    EXPECT_NE(report.state_dump.find("edge "), std::string::npos) << label;
    EXPECT_NE(report.state_dump.find("node "), std::string::npos) << label;
    EXPECT_NE(report.state_dump.find("port feed "), std::string::npos)
        << label;
    expect_same_report(reference, report, label);
  }
}

// Taps must never affect deadlock verdicts: a caller draining the tap
// slower than the threaded watchdog's certification window (tick x
// confirm_ticks) keeps the sink parked on a full tap while every other
// thread is blocked -- which must read as "awaiting the caller", not as a
// certifiable wedge. Regression test for the tap-park being hidden from
// the watchdog monitor.
TEST(Stream, ThreadedSlowTapDrainIsNotDeadlock) {
  const StreamGraph g = workloads::pipeline(2, 4);
  Session session(g, workloads::passthrough_kernels(g));
  StreamSpec ss;
  ss.run.backend = Backend::Threaded;
  ss.run.mode = DummyMode::None;
  ss.run.watchdog_tick = std::chrono::milliseconds(1);
  ss.run.deadlock_confirm_ticks = 5;  // ~5ms window, far below the drain gap
  ss.egress_capacity = 2;
  Stream stream = session.open(ss);
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(stream.input(0).push());
  stream.input(0).close();  // arms the watchdog
  std::uint64_t received = 0;
  while (auto item = stream.output(0).next()) {
    ++received;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(received, 12u);
  const RunReport report = stream.finish();
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.deadlocked);
}

// A kernel that parks its first firing until the test releases it -- the
// probe for "submit() returned before the workload ran".
class GateKernel final : public Kernel {
 public:
  void fire(std::uint64_t, const std::vector<std::optional<Value>>&,
            runtime::Emitter& out) override {
    std::unique_lock lock(mu_);
    if (!released_ &&
        !cv_.wait_for(lock, std::chrono::seconds(10),
                      [&] { return released_; }))
      timed_out_.store(true);
    out.emit(0, Value(std::int64_t{1}));
  }

  void release() {
    {
      std::lock_guard lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool timed_out() const { return timed_out_.load(); }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
  std::atomic<bool> timed_out_{false};
};

// Session::submit must be genuinely asynchronous on every backend: the
// source kernel blocks until the test releases it *after* submit returns,
// so an inline submit would trip the kernel's 10s timeout.
TEST(Stream, SubmitIsAsynchronousOnSimAndThreaded) {
  const StreamGraph g = workloads::pipeline(2, 4);
  for (const Backend backend : {Backend::Sim, Backend::Threaded}) {
    auto gate = std::make_shared<GateKernel>();
    std::vector<std::shared_ptr<Kernel>> kernels{gate,
                                                 runtime::pass_through_kernel()};
    Session session(g, kernels);
    RunSpec rs;
    rs.backend = backend;
    rs.mode = DummyMode::None;
    rs.num_inputs = 5;
    auto pending = session.submit(rs);
    gate->release();  // only reachable if submit did not run inline
    const RunReport report = pending.get();
    EXPECT_TRUE(report.completed) << to_string(backend);
    EXPECT_EQ(report.fires.front(), 5u) << to_string(backend);
    EXPECT_FALSE(gate->timed_out()) << to_string(backend);
  }
}

// Several live streams interleaved on one shared pool: multi-tenant
// streaming with per-tenant ports, each bit-identical to its batch run.
TEST(Stream, SharedPoolInterleavesLiveStreams) {
  const StreamGraph g = workloads::splitjoin(2, 2, 4);
  runtime::PoolExecutor pool(3);
  constexpr int kTenants = 4;
  constexpr std::uint64_t kItems = 80;
  std::vector<std::unique_ptr<Session>> sessions;
  std::vector<Stream> streams;
  for (int t = 0; t < kTenants; ++t) {
    sessions.push_back(std::make_unique<Session>(
        g, workloads::relay_kernels(g, 0.7, 0x77 + t)));
    StreamSpec ss;
    ss.run.backend = Backend::Pooled;
    ss.run.mode = DummyMode::None;
    ss.run.pool = &pool;
    streams.push_back(sessions.back()->open(ss));
  }
  for (std::uint64_t i = 0; i < kItems; ++i)
    for (auto& stream : streams) ASSERT_TRUE(stream.input(0).push());
  for (auto& stream : streams) stream.input(0).close();
  for (int t = 0; t < kTenants; ++t) {
    Session reference_session(g, workloads::relay_kernels(g, 0.7, 0x77 + t));
    RunSpec rs;
    rs.mode = DummyMode::None;
    rs.num_inputs = kItems;
    const RunReport reference = reference_session.run(rs);
    expect_same_report(reference, streams[t].finish(),
                       "tenant " + std::to_string(t));
  }
}

// try_push_for on a wedged stream: the deadline parks, then reports
// TimedOut -- the distinct backpressure status -- and never blocks past its
// bound. The port stays usable: close still certifies the exact deadlock,
// and a closed port reports Ended, not TimedOut.
TEST(Stream, TryPushForTimesOutOnWedgeThenStillCertifies) {
  const StreamGraph g = workloads::fig2_triangle(2, 2, 2);
  for (const Backend backend : kBackends) {
    Session session(g, wedge_kernels());
    StreamSpec ss;
    ss.run.backend = backend;
    ss.run.mode = DummyMode::None;
    ss.run.pool_workers = 2;
    ss.feed_capacity = 4;
    Stream stream = session.open(ss);
    const std::string label = to_string(backend);

    PortPushOutcome outcome = PortPushOutcome::Ok;
    const auto start = std::chrono::steady_clock::now();
    int accepted = 0;
    for (int i = 0; i < 64; ++i) {
      outcome = stream.input(0).try_push_for(Value(),
                                             std::chrono::milliseconds(40));
      if (outcome != PortPushOutcome::Ok) break;
      ++accepted;
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_EQ(outcome, PortPushOutcome::TimedOut) << label;
    EXPECT_GT(accepted, 0) << label;
    // 64 bounded attempts, each <= 40ms + slack: nothing hard-blocked.
    EXPECT_LT(elapsed, std::chrono::seconds(30)) << label;

    // A timed batch push on the same wedge accepts at most a short prefix
    // rather than blocking forever.
    const std::size_t bulk = stream.input(0).push_batch_for(
        std::vector<Value>(8), std::chrono::milliseconds(40));
    EXPECT_LT(bulk, 8u) << label;

    stream.input(0).close();
    EXPECT_EQ(stream.input(0).try_push_for(Value(),
                                           std::chrono::milliseconds(1)),
              PortPushOutcome::Ended)
        << label;
    const RunReport report = stream.finish();
    EXPECT_TRUE(report.deadlocked) << label;
    EXPECT_FALSE(report.state_dump.empty()) << label;
  }
}

// push_batch is the same stream as item-at-a-time push, coalesced: one
// reservation + one publish per chunk must leave payload order, per-edge
// traffic, firing counts and verdict bit-identical on every backend and in
// both avoidance modes.
TEST(Stream, PushBatchBitIdenticalToItemPushes) {
  const StreamGraph g = workloads::splitjoin(3, 2, 3);
  const auto compiled = core::compile(g);
  ASSERT_TRUE(compiled.ok);
  constexpr std::int64_t kItems = 150;
  for (const auto mode :
       {DummyMode::Propagation, DummyMode::NonPropagation}) {
    for (const Backend backend : kBackends) {
      const std::string label =
          std::string(to_string(backend)) + "+mode" +
          std::to_string(static_cast<int>(mode));
      RunReport reports[2];
      std::vector<std::int64_t> payloads[2];
      for (const int use_batch : {0, 1}) {
        Session session(g, workloads::relay_kernels(g, 0.55, 0xAB));
        StreamSpec ss;
        ss.run.mode = mode;
        ss.run.apply(compiled);
        ss.run.backend = backend;
        ss.run.pool_workers = 2;
        Stream stream = session.open(ss);
        const auto drain = [&] {
          while (auto item = stream.output(0).poll())
            payloads[use_batch].push_back(item->value.as<std::int64_t>());
        };
        std::int64_t next = 0;
        while (next < kItems) {
          // Varied chunk sizes cross the feed-capacity boundary, forcing
          // the room-limited multi-round staging path.
          const std::int64_t chunk =
              std::min<std::int64_t>(1 + (next * 7) % 23, kItems - next);
          if (use_batch == 1) {
            std::vector<Value> vals;
            for (std::int64_t i = 0; i < chunk; ++i)
              vals.emplace_back(Value((next + i) * 10));
            ASSERT_EQ(stream.input(0).push_batch(std::move(vals)),
                      static_cast<std::size_t>(chunk))
                << label;
          } else {
            for (std::int64_t i = 0; i < chunk; ++i)
              ASSERT_TRUE(stream.input(0).push(Value((next + i) * 10)))
                  << label;
          }
          next += chunk;
          drain();
        }
        stream.input(0).close();
        while (auto item = stream.output(0).next())
          payloads[use_batch].push_back(item->value.as<std::int64_t>());
        reports[use_batch] = stream.finish();
      }
      expect_same_report(reports[0], reports[1], label);
      EXPECT_EQ(payloads[0], payloads[1]) << label;
    }
  }
}

}  // namespace
}  // namespace sdaf::exec
