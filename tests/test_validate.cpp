#include "src/graph/validate.h"

#include <gtest/gtest.h>

#include "src/workloads/topologies.h"

namespace sdaf {
namespace {

TEST(Validate, AcceptsTwoTerminalDag) {
  const auto r = validate(workloads::fig1_splitjoin());
  EXPECT_TRUE(r.acyclic);
  EXPECT_TRUE(r.weakly_connected);
  EXPECT_TRUE(r.single_source);
  EXPECT_TRUE(r.single_sink);
  EXPECT_TRUE(r.two_terminal());
  EXPECT_TRUE(r.problems.empty());
}

TEST(Validate, FlagsMultipleSources) {
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  g.add_edge(a, c, 1);
  g.add_edge(b, c, 1);
  const auto r = validate(g);
  EXPECT_TRUE(r.valid_dag());
  EXPECT_FALSE(r.single_source);
  EXPECT_FALSE(r.two_terminal());
  EXPECT_FALSE(r.problems.empty());
}

TEST(Validate, FlagsDisconnected) {
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_edge(a, b, 1);
  (void)g.add_node();  // isolated
  const auto r = validate(g);
  EXPECT_FALSE(r.weakly_connected);
  EXPECT_FALSE(r.valid_dag());
}

TEST(Validate, FlagsDirectedCycle) {
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_edge(a, b, 1);
  g.add_edge(b, a, 1);
  const auto r = validate(g);
  EXPECT_FALSE(r.acyclic);
}

TEST(Validate, EmptyGraphRejected) {
  const auto r = validate(StreamGraph{});
  EXPECT_FALSE(r.valid_dag());
  EXPECT_FALSE(r.problems.empty());
}

TEST(Validate, WeakConnectivityIgnoresDirection) {
  // a -> c <- b is weakly connected.
  StreamGraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  g.add_edge(a, c, 1);
  g.add_edge(b, c, 1);
  EXPECT_TRUE(is_weakly_connected(g));
}

TEST(Validate, PaperTopologiesAreTwoTerminal) {
  EXPECT_TRUE(validate(workloads::fig2_triangle()).two_terminal());
  EXPECT_TRUE(validate(workloads::fig3_cycle()).two_terminal());
  EXPECT_TRUE(validate(workloads::fig4_left()).two_terminal());
  EXPECT_TRUE(validate(workloads::fig4_butterfly()).two_terminal());
  EXPECT_TRUE(validate(workloads::butterfly_rewrite()).two_terminal());
  EXPECT_TRUE(validate(workloads::fig5_ladder()).two_terminal());
}

}  // namespace
}  // namespace sdaf
